#ifndef SAPHYRA_SERVICE_SESSION_POOL_H_
#define SAPHYRA_SERVICE_SESSION_POOL_H_

/// \file
/// SessionPool: multi-graph tenancy for the serving layer. One process
/// hosts many graphs; each is registered under a client-visible name
/// (`--graph NAME=PATH`), loaded lazily into a warm QuerySession on its
/// first query, and LRU-evicted once more than `max_graphs` are resident.
///
/// Graph identity. A registration resolves its path
/// (std::filesystem::weakly_canonical), so two names registered against
/// the same file share one entry — and therefore one loaded session. The
/// loaded session's content fingerprint (GraphContentFingerprint, read
/// from the `.sgr` header when available) is what the scheduler's memo
/// keys embed, so even two *distinct files with identical CSR bytes*
/// share memoized results by construction: identical content ⇒ identical
/// fingerprint ⇒ identical cache key ⇒ the determinism contract says the
/// bytes must match. The pool never has to compare graph contents itself.
///
/// Loading. Each entry loads at most once per residency: the first
/// Acquire of a cold graph performs the load while concurrent acquirers
/// of the *same* graph wait on the entry (call_once semantics, but
/// reload-capable after eviction — a std::once_flag could never load
/// again); acquirers of *other* graphs are never blocked, because the
/// pool lock is dropped for the duration of the load. A failed load is
/// reported to the acquirers that waited on that attempt; a later
/// Acquire retries (transient I/O failures must not brick a name).
///
/// Eviction and pinning. Sessions are handed out as shared_ptr handles.
/// Evicting a graph only drops the *pool's* reference: queries already
/// running against the evicted session hold their own handle and finish
/// normally; the graph's memory is returned when the last handle drops.
/// A later Acquire reloads from the path — and the serving determinism
/// contract guarantees the reloaded session serves bitwise-identical
/// results (pinned by tests/serve_determinism_test.cc).
///
/// Ownership/threading: all public methods are thread-safe. One mutex
/// guards the registry, the LRU and the stats; loads run outside it.

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/session.h"
#include "util/status.h"

namespace saphyra {

struct SessionPoolOptions {
  /// Per-session settings (load path, default threads, eager index),
  /// shared by every graph in the pool.
  SessionOptions session;
  /// Resident-graph cap: loading a graph beyond this many evicts the
  /// least-recently-acquired one (0 = unbounded). In-flight queries pin
  /// their session; eviction only drops the pool's reference.
  size_t max_graphs = 4;
};

/// \brief Per-graph counters, snapshot via SessionPool::stats(). One row
/// per registered name; names aliasing the same resolved path share the
/// underlying entry and therefore report identical counters.
struct SessionPoolGraphStats {
  std::string name;
  std::string path;          ///< resolved registration path
  uint64_t fingerprint = 0;  ///< 0 until first load
  bool resident = false;     ///< pool currently holds a loaded session
  uint64_t acquires = 0;     ///< queries routed to this graph
  uint64_t loads = 0;        ///< cold/reload sessions built
  uint64_t evictions = 0;    ///< times the pool dropped its reference
};

/// \brief A named, LRU-bounded pool of warm QuerySessions.
class SessionPool {
 public:
  explicit SessionPool(const SessionPoolOptions& options);
  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// \brief Register `name` → `path`. The first registration becomes the
  /// default graph (the one an empty request `"graph"` field routes to).
  /// Fails on an empty or duplicate name; registering a second name for
  /// an already-registered resolved path aliases the existing entry.
  Status Register(const std::string& name, const std::string& path);

  /// \brief The warm session for `name` ("" = the default graph), loading
  /// it first if cold. The returned handle pins the session for as long
  /// as the caller holds it — eviction can never invalidate it.
  Status Acquire(const std::string& name,
                 std::shared_ptr<QuerySession>* out);

  /// \brief Load `name` now ("" = every registered graph), through the
  /// same LRU accounting as lazy loads. Lets servers fail fast on a bad
  /// registration instead of surfacing it on the first query.
  Status Preload(const std::string& name = "");

  /// \brief Name of the default graph (first registered); empty if none.
  std::string default_name() const;
  size_t registered_count() const;
  size_t resident_count() const;
  std::vector<SessionPoolGraphStats> stats() const;

 private:
  struct Entry {
    std::string path;  ///< resolved
    std::shared_ptr<QuerySession> session;
    bool loading = false;
    /// Bumped when a load attempt finishes (either way); lets waiters
    /// distinguish "the attempt I waited on failed" (return its error)
    /// from "still cold, nobody tried" (start an attempt).
    uint64_t load_generation = 0;
    Status last_error;
    std::condition_variable cv;
    /// Position in lru_ when resident.
    std::list<Entry*>::iterator lru_pos;
    uint64_t fingerprint = 0;
    uint64_t acquires = 0;
    uint64_t loads = 0;
    uint64_t evictions = 0;
  };

  /// Move `e` to the front of the LRU. Caller holds mu_; e is resident.
  void TouchLocked(Entry* e);
  /// Make `e` resident with `session`, evicting beyond max_graphs.
  /// Caller holds mu_.
  void PublishLocked(Entry* e, std::shared_ptr<QuerySession> session);

  SessionPoolOptions options_;

  mutable std::mutex mu_;
  /// Registered names, in registration order (the first is the default).
  std::vector<std::string> names_;
  std::map<std::string, std::shared_ptr<Entry>> by_name_;
  /// Resolved path → entry, so aliases share one session.
  std::map<std::string, std::shared_ptr<Entry>> by_path_;
  /// Resident entries, most-recently-acquired first.
  std::list<Entry*> lru_;
};

}  // namespace saphyra

#endif  // SAPHYRA_SERVICE_SESSION_POOL_H_
