#include "service/scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "service/shard.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace saphyra {
namespace {

// Actual footprint of a memo entry: the canonical encoding is stored
// twice (LRU node + index key), the result's payload vectors dominate
// everything else, and the fixed overhead stands in for the two node
// structures and the QueryResult scalars.
size_t MemoEntryCost(const std::string& canonical, const QueryResult& res) {
  return 2 * canonical.size() + res.id.size() + res.graph.size() +
         res.nodes.size() * sizeof(NodeId) +
         res.estimates.size() * sizeof(double) + 160;
}

}  // namespace

BatchScheduler::BatchScheduler(QuerySession* session,
                               const SchedulerOptions& options)
    : session_(session), options_(options) {}

BatchScheduler::BatchScheduler(SessionPool* pool,
                               const SchedulerOptions& options)
    : pool_(pool), options_(options) {}

Status BatchScheduler::ResolveSession(const std::string& graph,
                                      std::shared_ptr<QuerySession>* out) {
  if (pool_ != nullptr) return pool_->Acquire(graph, out);
  if (!graph.empty()) {
    return Status::NotFound("this server hosts a single unnamed graph "
                            "(request named \"" + graph + "\")");
  }
  // Non-owning handle over the borrowed session: the aliasing constructor
  // gives the callers the same pinned-pointer shape as pool mode without
  // the scheduler ever owning the session.
  *out = std::shared_ptr<QuerySession>(std::shared_ptr<QuerySession>(),
                                       session_);
  return Status::OK();
}

std::shared_ptr<const QueryResult> BatchScheduler::LookupMemoLocked(
    const QueryCacheKey& key) {
  auto it = memo_index_.find(key.canonical);
  if (it == memo_index_.end()) return nullptr;
  memo_.splice(memo_.begin(), memo_, it->second);  // touch
  return it->second->result;
}

void BatchScheduler::InsertMemoLocked(
    const QueryCacheKey& key, std::shared_ptr<const QueryResult> result) {
  if (options_.memo_capacity == 0) return;
  auto it = memo_index_.find(key.canonical);
  if (it != memo_index_.end()) {
    // A racing duplicate already inserted; the determinism contract says
    // the bytes are identical, so just refresh recency.
    memo_.splice(memo_.begin(), memo_, it->second);
    return;
  }
  const size_t cost = MemoEntryCost(key.canonical, *result);
  if (options_.memo_capacity_bytes != 0 &&
      cost > options_.memo_capacity_bytes) {
    // Caching this one result would evict the entire memo and still bust
    // the budget; serve it uncached instead.
    return;
  }
  memo_.push_front({key.canonical, cost, std::move(result)});
  memo_bytes_ += cost;
  memo_index_[key.canonical] = memo_.begin();
  while (memo_.size() > options_.memo_capacity ||
         (options_.memo_capacity_bytes != 0 &&
          memo_bytes_ > options_.memo_capacity_bytes)) {
    memo_bytes_ -= memo_.back().bytes;
    memo_index_.erase(memo_.back().canonical);
    memo_.pop_back();
    ++stats_.evictions;
  }
}

QueryResult BatchScheduler::RunUpdate(QuerySession* session,
                                      const QueryRequest& request,
                                      const QueryRequest& canonical) {
  QueryResult res;
  res.id = request.id;
  res.graph = request.graph;
  res.op = RequestOp::kUpdate;
  Status st = Status::OK();
  if (!options_.allow_updates) {
    st = Status::FailedPrecondition(
        "updates are disabled (start the server with --allow-updates)");
  }
  if (st.ok() && options_.server_cancel != nullptr) {
    const StatusCode why = options_.server_cancel->Poll();
    if (why != StatusCode::kOk) {
      st = CancelToken::ToStatus(why, "update " + request.id);
    }
  }
  UpdateOutcome outcome;
  Timer timer;
  if (st.ok()) {
    const EdgeMutation mut{canonical.action, canonical.edge_u,
                           canonical.edge_v};
    // One critical section covers the local apply AND the worker
    // broadcast: concurrent updates (even to different graphs) must reach
    // every worker in the order their epochs chained, or a restarted
    // worker's replayed fingerprints would diverge from the live ones.
    std::lock_guard<std::mutex> lock(update_mu_);
    st = session->ApplyUpdate(mut, &outcome);
    if (st.ok() && options_.supervisor != nullptr) {
      options_.supervisor->BroadcastUpdate(canonical.graph, mut,
                                           outcome.fingerprint);
    }
  }
  res.seconds = timer.ElapsedSeconds();
  res.status = st;
  res.epoch = outcome.epoch;
  res.fingerprint = outcome.fingerprint;
  res.compacted = outcome.compacted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
    if (st.ok()) {
      ++stats_.updates;
    } else {
      ++stats_.errors;
      if (st.code() == StatusCode::kCancelled) ++stats_.cancelled;
    }
  }
  return res;
}

QueryResult BatchScheduler::Run(const QueryRequest& request) {
  // Route first: the target range check inside canonicalization needs the
  // resolved graph's node count, and a cold pooled graph loads here (the
  // pinned handle keeps it valid even if the pool evicts it meanwhile).
  // The snapshot pinned here is the epoch this query runs on, whatever
  // updates land meanwhile — snapshot isolation.
  std::shared_ptr<QuerySession> session;
  Status st = ResolveSession(request.graph, &session);
  std::shared_ptr<const GraphSnapshot> snap;
  QueryRequest canonical;
  if (st.ok()) {
    snap = session->snapshot();
    canonical = request;
    st = CanonicalizeQuery(snap->graph().num_nodes(), &canonical);
  }
  if (st.ok() && canonical.op == RequestOp::kUpdate) {
    return RunUpdate(session.get(), request, canonical);
  }
  if (st.ok()) st = fail::FaultStatus("scheduler.admit");
  if (!st.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
    ++stats_.errors;
    QueryResult res;
    res.id = request.id;
    res.graph = request.graph;
    res.estimator = request.estimator;
    res.status = st;
    return res;
  }
  // Keyed by the pinned epoch's fingerprint: a post-update admission
  // chains to a new fingerprint and therefore a new key, so memoized
  // pre-update answers can never serve the mutated graph.
  const QueryCacheKey key = MakeQueryCacheKey(snap->fingerprint(), canonical);

  // Per-query cancellation: the deadline starts at admission (queue time
  // counts against the budget — a client asking for 50 ms cares about
  // response time, not compute time), chained to the server token so a
  // shutdown reaches queued and running queries alike.
  CancelToken token;
  token.set_parent(options_.server_cancel);
  if (canonical.deadline_ms > 0) {
    token.TightenDeadline(Deadline::AfterMillis(canonical.deadline_ms));
  }

  const uint32_t cap = std::max<uint32_t>(1, options_.max_concurrent);
  std::shared_ptr<Inflight> entry;
  std::shared_ptr<const QueryResult> memo_hit;
  Status slot_st;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.queries;
    memo_hit = LookupMemoLocked(key);
    if (memo_hit != nullptr) {
      ++stats_.memo_hits;
    } else {
      auto it = inflight_.find(key.canonical);
      if (it != inflight_.end()) {
        // Dedup join: costs no slot, so it neither counts against
        // max_queue nor can be shed — even a full queue joins here.
        entry = it->second;
        ++stats_.dedup_hits;
        entry->cv.wait(lock, [&entry] { return entry->done; });
        QueryResult res = entry->result;
        res.id = request.id;
        res.graph = request.graph;
        res.mode = ServeMode::kDeduped;
        res.seconds = 0.0;
        return res;
      }
      // Shed only queries that would actually wait: with a free execution
      // slot the queue is not involved, however full it is (registration
      // below and slot acquisition are one critical section, so "free
      // here" means "ours" — the old two-section flow could shed a query
      // while a slot sat idle).
      if (running_ >= cap && options_.max_queue != 0 &&
          waiting_ >= options_.max_queue) {
        ++stats_.shed;
        ++stats_.errors;
        QueryResult res;
        res.id = request.id;
        res.graph = request.graph;
        res.estimator = canonical.estimator;
        res.status = Status::ResourceExhausted(
            "admission queue full (max_queue=" +
            std::to_string(options_.max_queue) + ")");
        return res;
      }
      // Registered-before-queued: duplicates arriving while this query
      // waits for a slot dedup onto the entry instead of queueing their
      // own execution.
      entry = std::make_shared<Inflight>();
      inflight_[key.canonical] = entry;
      // Acquire a slot, honoring the token throughout: a query whose
      // deadline expires (or whose server is cancelled) before it ever
      // runs has no partial waves to report, so it answers with the bare
      // error. `queued` flips only once the query genuinely blocks —
      // a query admitted straight into a free slot never inflates
      // waiting_ (which the shed check above compares to max_queue).
      bool queued = false;
      for (;;) {
        const StatusCode why = token.Check();
        if (why != StatusCode::kOk) {
          slot_st = CancelToken::ToStatus(why, "queued query " + request.id);
          if (queued) --waiting_;
          break;
        }
        if (running_ < cap) {
          ++running_;
          if (queued) --waiting_;
          ++stats_.computed;
          break;
        }
        if (!queued) {
          queued = true;
          ++waiting_;
        }
        slot_cv_.wait_for(lock, std::chrono::milliseconds(10));
      }
    }
  }
  if (memo_hit != nullptr) {
    // The per-caller copy happens outside the lock; memo entries are
    // immutable and shared by pointer, so the hit itself was O(1).
    QueryResult res = *memo_hit;
    res.id = request.id;
    res.graph = request.graph;
    res.mode = ServeMode::kMemoized;
    res.seconds = 0.0;
    return res;
  }

  QueryResult res;
  if (!slot_st.ok()) {
    res.status = slot_st;
  } else {
    // The owner must always complete the in-flight entry — a throw from
    // the estimator (e.g. bad_alloc) that left it pending would wedge
    // every future request with this key in the dedup wait.
    try {
      if (options_.supervisor != nullptr) {
        // The worker keys its engine state by (graph, statistical query):
        // id and graph are routing fields, not statistical parameters, so
        // they are stripped from the wire encoding — two clients asking
        // the same question share one replayable state.
        QueryRequest wire = canonical;
        wire.id.clear();
        wire.graph.clear();
        ShardedQuery shard(options_.supervisor, canonical.graph,
                           snap->fingerprint(), SerializeQueryRequest(wire),
                           &token);
        res = session->RunCanonical(*snap, canonical, &token, &shard);
      } else {
        res = session->RunCanonical(*snap, canonical, &token);
      }
    } catch (const std::exception& e) {
      res.status = Status::Internal(std::string("query execution failed: ") +
                                    e.what());
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
    }
    slot_cv_.notify_one();
  }
  res.id = request.id;
  res.graph = request.graph;
  res.estimator = canonical.estimator;  // a no-op when RunCanonical ran
  if (res.status.ok()) res.mode = ServeMode::kComputed;
  // Materialize the memo entry before taking the lock: the O(|result|)
  // copy should not serialize other drivers. Degraded results are
  // deliberately not memoized — their bytes depend on where the clock cut
  // the run, which the cache key cannot pin.
  std::shared_ptr<const QueryResult> memo_entry;
  if (res.status.ok() && !res.degraded) {
    memo_entry = std::make_shared<const QueryResult>(res);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (memo_entry != nullptr) InsertMemoLocked(key, std::move(memo_entry));
    if (!res.status.ok()) {
      ++stats_.errors;  // shed/expired/failed: visible in the error count
      if (res.status.code() == StatusCode::kCancelled) ++stats_.cancelled;
    } else if (res.degraded) {
      ++stats_.degraded;
    }
    entry->result = res;
    entry->done = true;
    inflight_.erase(key.canonical);
  }
  entry->cv.notify_all();
  return res;
}

std::vector<QueryResult> BatchScheduler::RunBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<QueryResult> results(requests.size());
  const size_t admit =
      std::min<size_t>(std::max<uint32_t>(1, options_.max_concurrent),
                       requests.size());
  if (admit <= 1) {
    for (size_t i = 0; i < requests.size(); ++i) results[i] = Run(requests[i]);
    return results;
  }
  // Driver threads pull the next unanswered request; sampling inside each
  // query still fans out on SharedThreadPool (per-call task groups keep
  // the drivers independent there).
  std::atomic<size_t> next{0};
  auto drive = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= requests.size()) return;
      results[i] = Run(requests[i]);
    }
  };
  std::vector<std::thread> drivers;
  drivers.reserve(admit);
  for (size_t t = 0; t < admit; ++t) drivers.emplace_back(drive);
  for (auto& d : drivers) d.join();
  return results;
}

SchedulerStats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats snapshot = stats_;
  snapshot.memo_bytes = memo_bytes_;
  snapshot.queued = waiting_;
  return snapshot;
}

}  // namespace saphyra
