#ifndef SAPHYRA_SERVICE_SCHEDULER_H_
#define SAPHYRA_SERVICE_SCHEDULER_H_

/// \file
/// BatchScheduler: admission, deduplication and memoization over warm
/// query sessions. Admits up to `max_concurrent` queries at once (each
/// runs on its own driver thread; sample generation inside them shares
/// SharedThreadPool through per-call task groups), collapses identical
/// in-flight requests onto one execution, and memoizes completed results
/// in an LRU keyed by the canonical query encoding — which includes the
/// graph's content fingerprint, so results can never leak across graphs.
///
/// A scheduler fronts either one QuerySession (the single-graph servers
/// and tests) or a SessionPool (multi-graph tenancy): each admitted
/// request is routed by its `graph` name to the pooled session, which the
/// scheduler pins (shared_ptr handle) for the duration of the run — the
/// pool may evict the graph meanwhile, and the query still completes on
/// the pinned session. The memo, dedup table and slot gate are shared
/// across all graphs: safe by construction, because the cache key's
/// fingerprint prefix partitions entries per graph *content*.
///
/// Memoization is sound because of the determinism contract: a canonical
/// key pins every statistical parameter of the run, and the contract
/// (DESIGN.md, "Serving determinism contract") guarantees the estimator
/// would reproduce the stored bytes exactly. A memo hit is therefore
/// indistinguishable from a re-run — same bits, less work — and the
/// determinism tests (tests/serve_determinism_test.cc) verify exactly
/// that equivalence.
///
/// Degraded results (deadline-truncated runs) are NEVER memoized: their
/// bytes depend on where the wall clock cut the run, which the canonical
/// key does not pin. They are still deduplicated — concurrent duplicates
/// share whatever the owner produced, including its truncation.
///
/// Ownership/threading: all public methods are thread-safe; one mutex
/// guards the memo, the in-flight table, the slot gate and the stats. The
/// session (or pool) must outlive the scheduler.

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "service/query.h"
#include "service/session.h"
#include "service/session_pool.h"
#include "util/cancel.h"

namespace saphyra {

class WorkerSupervisor;

struct SchedulerOptions {
  /// Estimator executions running concurrently (1 = serial execution);
  /// also the RunBatch driver count. Enforced inside Run(), so direct
  /// concurrent callers queue for a slot too.
  uint32_t max_concurrent = 1;
  /// Completed-result LRU capacity in entries (0 disables memoization).
  size_t memo_capacity = 64;
  /// Byte budget of the memo LRU (0 = unbounded). Entries are charged
  /// their actual footprint — O(|targets|) for subset queries but O(n)
  /// for whole-network results (bc-full, targetless baselines) — so one
  /// big result displaces proportionally many small ones instead of
  /// counting as "1 of 64". A result larger than the whole budget is
  /// served but not cached. Evictions happen when either this or
  /// memo_capacity is exceeded.
  size_t memo_capacity_bytes = 64ull << 20;
  /// Admission bound: queries queued for an execution slot beyond this
  /// many are shed immediately with RESOURCE_EXHAUSTED instead of
  /// waiting (0 = unbounded). Only genuinely queued queries count or are
  /// counted against: memo and dedup hits cost no slot and are never
  /// shed, and a query admitted straight into a free slot never touches
  /// the queue.
  size_t max_queue = 0;
  /// Server-wide shutdown token, chained as the parent of every per-query
  /// token: Cancel() stops new executions with CANCELLED and makes
  /// running ones finalize degraded at their next wave; TightenDeadline()
  /// implements a drain window. Borrowed; must outlive the scheduler.
  const CancelToken* server_cancel = nullptr;
  /// Non-null: delegate every sample wave to this sharded worker tier
  /// (service/shard.h) instead of drawing locally. Results are bitwise
  /// identical either way (determinism contract), so the memo and dedup
  /// machinery are oblivious to the switch. Borrowed; must outlive the
  /// scheduler.
  WorkerSupervisor* supervisor = nullptr;
  /// Accept {"op":"update"} requests (saphyra_serve --allow-updates).
  /// Off by default: a server not expecting mutations answers them with
  /// FAILED_PRECONDITION instead of silently changing its graphs.
  bool allow_updates = false;
};

struct SchedulerStats {
  uint64_t queries = 0;      ///< requests answered
  uint64_t updates = 0;      ///< graph mutations applied
  uint64_t computed = 0;     ///< estimator executions
  uint64_t memo_hits = 0;    ///< served from the LRU
  uint64_t dedup_hits = 0;   ///< shared an in-flight execution
  uint64_t errors = 0;       ///< requests answered with an error status
  uint64_t evictions = 0;    ///< LRU entries displaced
  uint64_t shed = 0;         ///< rejected at admission (RESOURCE_EXHAUSTED)
  uint64_t degraded = 0;     ///< answered from a deadline-truncated run
  uint64_t cancelled = 0;    ///< answered CANCELLED (server shutdown)
  uint64_t memo_bytes = 0;   ///< gauge: current memo LRU footprint
  uint64_t queued = 0;       ///< gauge: queries waiting for a slot now
};

/// \brief Concurrent query front door over warm sessions.
class BatchScheduler {
 public:
  /// \brief Single-graph mode: every request runs on `session`; requests
  /// naming a graph are rejected with NOT_FOUND. Borrowed; must outlive
  /// the scheduler.
  BatchScheduler(QuerySession* session, const SchedulerOptions& options);
  /// \brief Multi-graph mode: requests route through `pool` by their
  /// `graph` name ("" = the pool's default graph). Borrowed; must outlive
  /// the scheduler.
  BatchScheduler(SessionPool* pool, const SchedulerOptions& options);

  /// \brief Answer one request through the memo/dedup machinery.
  /// Thread-safe; concurrent callers with the same canonical key share one
  /// execution.
  QueryResult Run(const QueryRequest& request);

  /// \brief Answer a batch; results align with `requests`. Up to
  /// `max_concurrent` requests execute at once. Result *values* are
  /// independent of the admission order and concurrency (determinism
  /// contract); the served-mode labels are not — which request of a
  /// duplicate pair computes and which dedups depends on timing.
  std::vector<QueryResult> RunBatch(const std::vector<QueryRequest>& requests);

  SchedulerStats stats() const;

 private:
  struct Inflight {
    bool done = false;
    QueryResult result;
    std::condition_variable cv;
  };
  /// Memoized results are immutable and shared by pointer, so a hit under
  /// the lock is a refcount bump, not an O(|result|) copy — the per-caller
  /// copy (id/mode adjustment) happens outside mu_.
  struct MemoEntry {
    std::string canonical;
    /// Byte cost charged against memo_capacity_bytes, fixed at insertion.
    size_t bytes = 0;
    std::shared_ptr<const QueryResult> result;
  };

  /// Pin the session the request routes to: the pool's (loading it if
  /// cold) in pool mode, the borrowed single session otherwise.
  Status ResolveSession(const std::string& graph,
                        std::shared_ptr<QuerySession>* out);

  /// The {"op":"update"} path: bypasses the memo, the dedup table and
  /// the slot gate (mutations are cheap, serialized, and must never be
  /// answered from a cache), applies the mutation to the local session
  /// and — in sharded mode — broadcasts it to the worker tier under one
  /// update mutex, so no two updates can interleave differently between
  /// the coordinator and its workers.
  QueryResult RunUpdate(QuerySession* session, const QueryRequest& request,
                        const QueryRequest& canonical);

  /// Memo lookup + LRU touch; non-null on hit. Caller holds mu_.
  std::shared_ptr<const QueryResult> LookupMemoLocked(
      const QueryCacheKey& key);
  /// Insert a completed ok result. Caller holds mu_.
  void InsertMemoLocked(const QueryCacheKey& key,
                        std::shared_ptr<const QueryResult> result);

  QuerySession* session_ = nullptr;  ///< single-graph mode
  SessionPool* pool_ = nullptr;      ///< multi-graph mode
  SchedulerOptions options_;

  mutable std::mutex mu_;
  SchedulerStats stats_;
  /// Serializes update application across sessions AND the shard
  /// broadcast: local apply + worker broadcast are one critical section,
  /// so every worker observes updates in the exact order the epochs
  /// chained — a reorder would diverge the fingerprint chain.
  std::mutex update_mu_;
  /// Execution-slot gate: estimator runs in flight / owners queued for a
  /// slot. Slot waiters poll their cancel token every ~10 ms, so a queued
  /// query honors its deadline (and the shutdown token) without a
  /// per-query wakeup channel.
  uint32_t running_ = 0;
  size_t waiting_ = 0;
  std::condition_variable slot_cv_;
  /// LRU list, most-recent first, with an index by canonical encoding.
  std::list<MemoEntry> memo_;
  size_t memo_bytes_ = 0;
  std::map<std::string, std::list<MemoEntry>::iterator> memo_index_;
  std::map<std::string, std::shared_ptr<Inflight>> inflight_;
};

}  // namespace saphyra

#endif  // SAPHYRA_SERVICE_SCHEDULER_H_
