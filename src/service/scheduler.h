#ifndef SAPHYRA_SERVICE_SCHEDULER_H_
#define SAPHYRA_SERVICE_SCHEDULER_H_

/// \file
/// BatchScheduler: admission, deduplication and memoization over a
/// QuerySession. Admits up to `max_concurrent` queries at once (each runs
/// on its own driver thread; sample generation inside them shares
/// SharedThreadPool through per-call task groups), collapses identical
/// in-flight requests onto one execution, and memoizes completed results
/// in an LRU keyed by the canonical query encoding — which includes the
/// graph's content fingerprint, so results can never leak across graphs.
///
/// Memoization is sound because of the determinism contract: a canonical
/// key pins every statistical parameter of the run, and the contract
/// (DESIGN.md, "Serving determinism contract") guarantees the estimator
/// would reproduce the stored bytes exactly. A memo hit is therefore
/// indistinguishable from a re-run — same bits, less work — and the
/// determinism tests (tests/serve_determinism_test.cc) verify exactly
/// that equivalence.
///
/// Degraded results (deadline-truncated runs) are NEVER memoized: their
/// bytes depend on where the wall clock cut the run, which the canonical
/// key does not pin. They are still deduplicated — concurrent duplicates
/// share whatever the owner produced, including its truncation.
///
/// Ownership/threading: all public methods are thread-safe; one mutex
/// guards the memo, the in-flight table, the slot gate and the stats. The
/// session must outlive the scheduler.

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "service/query.h"
#include "service/session.h"
#include "util/cancel.h"

namespace saphyra {

struct SchedulerOptions {
  /// Estimator executions running concurrently (1 = serial execution);
  /// also the RunBatch driver count. Enforced inside Run(), so direct
  /// concurrent callers queue for a slot too.
  uint32_t max_concurrent = 1;
  /// Completed-result LRU capacity in *entries* (0 disables memoization).
  /// Entries are O(|targets|) — but whole-network results (bc-full, or a
  /// targetless baseline query) are O(n) each, so size this down when
  /// memoizing full-graph queries on very large graphs.
  size_t memo_capacity = 64;
  /// Admission bound: queries queued for an execution slot beyond this
  /// many are shed immediately with RESOURCE_EXHAUSTED instead of
  /// waiting (0 = unbounded). Memo and dedup hits are never shed — they
  /// cost no slot.
  size_t max_queue = 0;
  /// Server-wide shutdown token, chained as the parent of every per-query
  /// token: Cancel() stops new executions with CANCELLED and makes
  /// running ones finalize degraded at their next wave; TightenDeadline()
  /// implements a drain window. Borrowed; must outlive the scheduler.
  const CancelToken* server_cancel = nullptr;
};

struct SchedulerStats {
  uint64_t queries = 0;      ///< requests answered
  uint64_t computed = 0;     ///< estimator executions
  uint64_t memo_hits = 0;    ///< served from the LRU
  uint64_t dedup_hits = 0;   ///< shared an in-flight execution
  uint64_t errors = 0;       ///< requests answered with an error status
  uint64_t evictions = 0;    ///< LRU entries displaced
  uint64_t shed = 0;         ///< rejected at admission (RESOURCE_EXHAUSTED)
  uint64_t degraded = 0;     ///< answered from a deadline-truncated run
  uint64_t cancelled = 0;    ///< answered CANCELLED (server shutdown)
};

/// \brief Concurrent query front door over one warm QuerySession.
class BatchScheduler {
 public:
  BatchScheduler(QuerySession* session, const SchedulerOptions& options);

  /// \brief Answer one request through the memo/dedup machinery.
  /// Thread-safe; concurrent callers with the same canonical key share one
  /// execution.
  QueryResult Run(const QueryRequest& request);

  /// \brief Answer a batch; results align with `requests`. Up to
  /// `max_concurrent` requests execute at once. Result *values* are
  /// independent of the admission order and concurrency (determinism
  /// contract); the served-mode labels are not — which request of a
  /// duplicate pair computes and which dedups depends on timing.
  std::vector<QueryResult> RunBatch(const std::vector<QueryRequest>& requests);

  SchedulerStats stats() const;
  QuerySession* session() const { return session_; }

 private:
  struct Inflight {
    bool done = false;
    QueryResult result;
    std::condition_variable cv;
  };
  /// Memoized results are immutable and shared by pointer, so a hit under
  /// the lock is a refcount bump, not an O(|result|) copy — the per-caller
  /// copy (id/mode adjustment) happens outside mu_.
  struct MemoEntry {
    std::string canonical;
    std::shared_ptr<const QueryResult> result;
  };

  /// Memo lookup + LRU touch; non-null on hit. Caller holds mu_.
  std::shared_ptr<const QueryResult> LookupMemoLocked(
      const QueryCacheKey& key);
  /// Insert a completed ok result. Caller holds mu_.
  void InsertMemoLocked(const QueryCacheKey& key,
                        std::shared_ptr<const QueryResult> result);

  QuerySession* session_;
  SchedulerOptions options_;

  mutable std::mutex mu_;
  SchedulerStats stats_;
  /// Execution-slot gate: estimator runs in flight / owners queued for a
  /// slot. Slot waiters poll their cancel token every ~10 ms, so a queued
  /// query honors its deadline (and the shutdown token) without a
  /// per-query wakeup channel.
  uint32_t running_ = 0;
  size_t waiting_ = 0;
  std::condition_variable slot_cv_;
  /// LRU list, most-recent first, with an index by canonical encoding.
  std::list<MemoEntry> memo_;
  std::map<std::string, std::list<MemoEntry>::iterator> memo_index_;
  std::map<std::string, std::shared_ptr<Inflight>> inflight_;
};

}  // namespace saphyra

#endif  // SAPHYRA_SERVICE_SCHEDULER_H_
