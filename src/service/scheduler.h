#ifndef SAPHYRA_SERVICE_SCHEDULER_H_
#define SAPHYRA_SERVICE_SCHEDULER_H_

/// \file
/// BatchScheduler: admission, deduplication and memoization over a
/// QuerySession. Admits up to `max_concurrent` queries at once (each runs
/// on its own driver thread; sample generation inside them shares
/// SharedThreadPool through per-call task groups), collapses identical
/// in-flight requests onto one execution, and memoizes completed results
/// in an LRU keyed by the canonical query encoding — which includes the
/// graph's content fingerprint, so results can never leak across graphs.
///
/// Memoization is sound because of the determinism contract: a canonical
/// key pins every statistical parameter of the run, and the contract
/// (DESIGN.md, "Serving determinism contract") guarantees the estimator
/// would reproduce the stored bytes exactly. A memo hit is therefore
/// indistinguishable from a re-run — same bits, less work — and the
/// determinism tests (tests/serve_determinism_test.cc) verify exactly
/// that equivalence.
///
/// Ownership/threading: all public methods are thread-safe; one mutex
/// guards the memo, the in-flight table and the stats. The session must
/// outlive the scheduler.

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "service/query.h"
#include "service/session.h"

namespace saphyra {

struct SchedulerOptions {
  /// Queries admitted concurrently by RunBatch (1 = serial admission).
  uint32_t max_concurrent = 1;
  /// Completed-result LRU capacity in *entries* (0 disables memoization).
  /// Entries are O(|targets|) — but whole-network results (bc-full, or a
  /// targetless baseline query) are O(n) each, so size this down when
  /// memoizing full-graph queries on very large graphs.
  size_t memo_capacity = 64;
};

struct SchedulerStats {
  uint64_t queries = 0;      ///< requests answered
  uint64_t computed = 0;     ///< estimator executions
  uint64_t memo_hits = 0;    ///< served from the LRU
  uint64_t dedup_hits = 0;   ///< shared an in-flight execution
  uint64_t errors = 0;       ///< invalid requests
  uint64_t evictions = 0;    ///< LRU entries displaced
};

/// \brief Concurrent query front door over one warm QuerySession.
class BatchScheduler {
 public:
  BatchScheduler(QuerySession* session, const SchedulerOptions& options);

  /// \brief Answer one request through the memo/dedup machinery.
  /// Thread-safe; concurrent callers with the same canonical key share one
  /// execution.
  QueryResult Run(const QueryRequest& request);

  /// \brief Answer a batch; results align with `requests`. Up to
  /// `max_concurrent` requests execute at once. Result *values* are
  /// independent of the admission order and concurrency (determinism
  /// contract); the served-mode labels are not — which request of a
  /// duplicate pair computes and which dedups depends on timing.
  std::vector<QueryResult> RunBatch(const std::vector<QueryRequest>& requests);

  SchedulerStats stats() const;
  QuerySession* session() const { return session_; }

 private:
  struct Inflight {
    bool done = false;
    QueryResult result;
    std::condition_variable cv;
  };
  /// Memoized results are immutable and shared by pointer, so a hit under
  /// the lock is a refcount bump, not an O(|result|) copy — the per-caller
  /// copy (id/mode adjustment) happens outside mu_.
  struct MemoEntry {
    std::string canonical;
    std::shared_ptr<const QueryResult> result;
  };

  /// Memo lookup + LRU touch; non-null on hit. Caller holds mu_.
  std::shared_ptr<const QueryResult> LookupMemoLocked(
      const QueryCacheKey& key);
  /// Insert a completed ok result. Caller holds mu_.
  void InsertMemoLocked(const QueryCacheKey& key,
                        std::shared_ptr<const QueryResult> result);

  QuerySession* session_;
  SchedulerOptions options_;

  mutable std::mutex mu_;
  SchedulerStats stats_;
  /// LRU list, most-recent first, with an index by canonical encoding.
  std::list<MemoEntry> memo_;
  std::map<std::string, std::list<MemoEntry>::iterator> memo_index_;
  std::map<std::string, std::shared_ptr<Inflight>> inflight_;
};

}  // namespace saphyra

#endif  // SAPHYRA_SERVICE_SCHEDULER_H_
