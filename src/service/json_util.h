#ifndef SAPHYRA_SERVICE_JSON_UTIL_H_
#define SAPHYRA_SERVICE_JSON_UTIL_H_

/// \file
/// Minimal JSON support for the serving layer: a strict recursive-descent
/// parser into a small value tree, plus escaping writers. Covers exactly
/// what `saphyra_serve`'s newline-delimited request/response protocol
/// needs (objects, arrays, strings, finite numbers, booleans, null) — no
/// comments, no NaN/Infinity, no duplicate-key policing beyond last-wins.
/// The repo deliberately has no third-party JSON dependency; this stays
/// small and fully tested (tests/json_util_test.cc) instead.
///
/// Ownership/threading: JsonValue is a plain value type; parsing and
/// writing are pure functions with no global state, safe to call from any
/// thread concurrently.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace saphyra {

/// \brief One parsed JSON value. A tagged union over the JSON types;
/// numbers keep both the double value and the raw uint64 when the literal
/// was a non-negative integer (seeds and node ids exceed 2^53).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  /// Exact value for non-negative integer literals without '.', 'e', or a
  /// leading '-'; meaningful only when `is_uint` is true.
  uint64_t uint_value = 0;
  bool is_uint = false;
  std::string string_value;
  std::vector<JsonValue> array;
  /// Insertion order is irrelevant to the protocol; a sorted map keeps
  /// lookups simple.
  std::map<std::string, JsonValue> object;

  bool is_null() const { return type == Type::kNull; }

  /// \brief Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// \brief Parse exactly one JSON document from `text` (surrounding
/// whitespace allowed, trailing garbage rejected).
Status ParseJson(const std::string& text, JsonValue* out);

/// \brief `s` with JSON string escaping applied, including the quotes.
std::string JsonQuote(const std::string& s);

/// \brief Shortest round-trip rendering of a double (%.17g, then the
/// shortest precision that parses back bit-equal). Keeps the NDJSON
/// responses bitwise-faithful to the computed estimates.
std::string JsonNumber(double v);

}  // namespace saphyra

#endif  // SAPHYRA_SERVICE_JSON_UTIL_H_
