#include "service/shard_worker.h"

#include <unistd.h>

#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/abra.h"
#include "baselines/kadabra.h"
#include "bc/saphyra_bc.h"
#include "closeness/closeness.h"
#include "core/sample_engine.h"
#include "kpath/kpath.h"
#include "net/frame.h"
#include "service/json_util.h"
#include "service/query.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace saphyra {

namespace {

/// Replies never block the loop forever behind a wedged coordinator.
constexpr uint64_t kReplyTimeoutMs = 30000;

std::vector<NodeId> AllNodes(NodeId n) {
  std::vector<NodeId> all(n);
  for (NodeId v = 0; v < n; ++v) all[v] = v;
  return all;
}

bool IsSaphyraFrontend(EstimatorKind kind) {
  // These route through RunSaphyra's pilot + main structure (two RNG
  // streams, ordinals 0 and 1); ABRA/KADABRA run one progressive loop on
  // the base stream (ordinal 0 only). Must mirror core/saphyra.cc and
  // the baselines exactly — this is the replay contract.
  return kind == EstimatorKind::kBc || kind == EstimatorKind::kBcFull ||
         kind == EstimatorKind::kKPath || kind == EstimatorKind::kCloseness;
}

/// One ordinal's engine plus how far each stripe's stream has been
/// consumed since the engine was built.
struct OrdinalState {
  std::unique_ptr<SampleEngine> engine;
  std::vector<uint64_t> pos;
  size_t num_stripes = 0;
};

/// Cached per-(graph, fingerprint, canonical query) sampling state.
struct QueryState {
  std::shared_ptr<QuerySession> session;  ///< pins the pool entry
  /// Pins the exact epoch the state was built against: a concurrent
  /// update swaps the session's current snapshot, but this state's
  /// problem keeps reading the graph/index it was built from.
  std::shared_ptr<const GraphSnapshot> snapshot;
  QueryRequest req;  ///< canonical
  std::unique_ptr<HypothesisRankingProblem> problem;
  OrdinalState ordinals[2];
};

/// Build (or rebuild) `ordinal`'s engine from the query seed, deriving
/// the base RNG stream exactly as the frontend does. The engine consumes
/// the base stream only at construction, so the locals here suffice.
Status BuildOrdinal(QueryState* state, uint32_t ordinal, size_t num_stripes) {
  OrdinalState* ord = &state->ordinals[ordinal];
  ord->engine.reset();
  Rng rng(state->req.seed);
  if (IsSaphyraFrontend(state->req.estimator)) {
    Rng pilot_rng = rng.Split();
    Rng* base = ordinal == 0 ? &pilot_rng : &rng;
    ord->engine = std::make_unique<SampleEngine>(
        state->problem.get(), static_cast<uint32_t>(num_stripes), base,
        /*pool=*/nullptr);
  } else {
    if (ordinal != 0) {
      return Status::InvalidArgument(
          "estimator has a single progressive run; ordinal must be 0");
    }
    ord->engine = std::make_unique<SampleEngine>(
        state->problem.get(), static_cast<uint32_t>(num_stripes), &rng,
        /*pool=*/nullptr);
  }
  if (ord->engine->num_workers() != num_stripes) {
    const size_t got = ord->engine->num_workers();
    ord->engine.reset();
    return Status::Internal("engine materialized " + std::to_string(got) +
                            " stripes, coordinator expects " +
                            std::to_string(num_stripes));
  }
  ord->pos.assign(num_stripes, 0);
  ord->num_stripes = num_stripes;
  return Status::OK();
}

Status BuildQueryState(SessionPool* pool, const std::string& graph,
                       uint64_t fingerprint, const std::string& query_json,
                       std::unique_ptr<QueryState>* out) {
  auto state = std::make_unique<QueryState>();
  SAPHYRA_RETURN_NOT_OK(pool->Acquire(graph, &state->session));
  state->snapshot = state->session->snapshot();
  if (state->snapshot->fingerprint() != fingerprint) {
    return Status::FailedPrecondition(
        "graph fingerprint mismatch: worker serves " +
        std::to_string(state->snapshot->fingerprint()) +
        ", coordinator expects " + std::to_string(fingerprint));
  }
  SAPHYRA_RETURN_NOT_OK(ParseQueryRequest(query_json, &state->req));
  SAPHYRA_RETURN_NOT_OK(CanonicalizeQuery(
      state->snapshot->graph().num_nodes(), &state->req));

  const Graph& g = state->snapshot->graph();
  const QueryRequest& req = state->req;
  switch (req.estimator) {
    case EstimatorKind::kBc:
    case EstimatorKind::kBcFull: {
      SaphyraBcOptions opts;
      opts.seed = req.seed;
      opts.strategy = req.strategy;
      const std::vector<NodeId> targets =
          req.estimator == EstimatorKind::kBcFull ? AllNodes(g.num_nodes())
                                                  : req.targets;
      state->problem = MakeSaphyraBcSamplingProblem(state->snapshot->isp(),
                                                    targets, opts);
      break;
    }
    case EstimatorKind::kKPath: {
      std::vector<NodeId> targets =
          req.targets.empty() ? AllNodes(g.num_nodes()) : req.targets;
      state->problem = std::make_unique<KPathProblem>(g, std::move(targets),
                                                      req.k);
      break;
    }
    case EstimatorKind::kCloseness: {
      std::vector<NodeId> targets =
          req.targets.empty() ? AllNodes(g.num_nodes()) : req.targets;
      state->problem = std::make_unique<HarmonicClosenessProblem>(
          g, std::move(targets));
      break;
    }
    case EstimatorKind::kAbra:
      state->problem = MakeAbraSamplingProblem(g);
      break;
    case EstimatorKind::kKadabra:
      state->problem = MakeKadabraSamplingProblem(g, req.strategy,
                                                  req.traversal);
      break;
  }
  *out = std::move(state);
  return Status::OK();
}

/// The worker's engine-state cache: list in LRU order (front = hottest)
/// with an index by (graph, query) key.
class StateCache {
 public:
  explicit StateCache(size_t capacity) : capacity_(capacity) {}

  Status GetOrCreate(SessionPool* pool, const std::string& graph,
                     uint64_t fingerprint, const std::string& query_json,
                     QueryState** out) {
    // The fingerprint is part of the key, not just an assertion: after an
    // update bumps a graph's epoch, waves arrive with the chained
    // fingerprint and MUST miss the pre-update state (whose engines hold
    // the old snapshot). Stale entries age out of the LRU.
    const std::string key =
        graph + '\0' + std::to_string(fingerprint) + '\0' + query_json;
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      *out = it->second->second.get();
      return Status::OK();
    }
    std::unique_ptr<QueryState> state;
    SAPHYRA_RETURN_NOT_OK(
        BuildQueryState(pool, graph, fingerprint, query_json, &state));
    lru_.emplace_front(key, std::move(state));
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
    }
    *out = lru_.front().second.get();
    return Status::OK();
  }

 private:
  size_t capacity_;
  std::list<std::pair<std::string, std::unique_ptr<QueryState>>> lru_;
  std::map<std::string,
           std::list<std::pair<std::string,
                               std::unique_ptr<QueryState>>>::iterator>
      index_;
};

Status GetUintField(const JsonValue& doc, const char* key, uint64_t* out) {
  const JsonValue* v = doc.Find(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber || !v->is_uint) {
    return Status::InvalidArgument(std::string("wave message: ") + key +
                                   " must be a non-negative integer");
  }
  *out = v->uint_value;
  return Status::OK();
}

void AppendUintArray(const std::vector<uint64_t>& values, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out->push_back(',');
    *out += std::to_string(values[i]);
  }
  out->push_back(']');
}

/// Execute one wave request; on success *reply is the ok frame, on error
/// the caller turns the status into an error frame.
Status HandleWave(const JsonValue& doc, SessionPool* pool, StateCache* cache,
                  std::string* reply) {
  const JsonValue* graph_v = doc.Find("graph");
  const JsonValue* query_v = doc.Find("query");
  const JsonValue* stripes_v = doc.Find("stripes");
  if (graph_v == nullptr || graph_v->type != JsonValue::Type::kString ||
      query_v == nullptr || query_v->type != JsonValue::Type::kString ||
      stripes_v == nullptr || stripes_v->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("wave message is malformed");
  }
  uint64_t fingerprint = 0, ordinal = 0, num_stripes = 0, from = 0, to = 0,
           budget_ms = 0;
  SAPHYRA_RETURN_NOT_OK(GetUintField(doc, "fingerprint", &fingerprint));
  SAPHYRA_RETURN_NOT_OK(GetUintField(doc, "ordinal", &ordinal));
  SAPHYRA_RETURN_NOT_OK(GetUintField(doc, "num_stripes", &num_stripes));
  SAPHYRA_RETURN_NOT_OK(GetUintField(doc, "from", &from));
  SAPHYRA_RETURN_NOT_OK(GetUintField(doc, "to", &to));
  SAPHYRA_RETURN_NOT_OK(GetUintField(doc, "budget_ms", &budget_ms));
  if (ordinal >= 2 || num_stripes == 0 || to <= from) {
    return Status::InvalidArgument("wave message parameters out of range");
  }
  std::vector<uint32_t> stripes;
  stripes.reserve(stripes_v->array.size());
  for (const JsonValue& e : stripes_v->array) {
    if (e.type != JsonValue::Type::kNumber || !e.is_uint ||
        e.uint_value >= num_stripes) {
      return Status::InvalidArgument("wave stripe index out of range");
    }
    stripes.push_back(static_cast<uint32_t>(e.uint_value));
  }

  QueryState* state = nullptr;
  SAPHYRA_RETURN_NOT_OK(cache->GetOrCreate(pool, graph_v->string_value,
                                           fingerprint, query_v->string_value,
                                           &state));
  OrdinalState* ord = &state->ordinals[ordinal];
  bool rebuild = ord->engine == nullptr || ord->num_stripes != num_stripes;
  if (!rebuild) {
    for (uint32_t s : stripes) {
      // The coordinator retried a range this incarnation half-drew (or a
      // memo-missed re-run restarted the query): streams only run
      // forward, so start this ordinal over from the seed.
      if (ord->pos[s] > StripeSamplesBelow(from, s, num_stripes)) {
        rebuild = true;
        break;
      }
    }
  }
  if (rebuild) {
    SAPHYRA_RETURN_NOT_OK(BuildOrdinal(state, static_cast<uint32_t>(ordinal),
                                       num_stripes));
    ord = &state->ordinals[ordinal];
  }

  const Deadline deadline =
      budget_ms == 0 ? Deadline::Never() : Deadline::AfterMillis(budget_ms);
  for (uint32_t s : stripes) {
    if (deadline.expired()) {
      // Keep the state consistent: stripes already drawn this wave have
      // consumed RNG, so zero their pending locals and let pos[] stand —
      // the coordinator's retry of this range triggers a rebuild.
      RawSampleDelta discard;
      ord->engine->HarvestDelta(&discard);
      return Status::DeadlineExceeded("wave budget exhausted after " +
                                      std::to_string(from) + " replay");
    }
    const uint64_t below_from = StripeSamplesBelow(from, s, num_stripes);
    const uint64_t below_to = StripeSamplesBelow(to, s, num_stripes);
    if (ord->pos[s] < below_from) {
      // Another process drew [pos, below_from) of this stripe; replay it
      // with identical RNG consumption, discarding the losses.
      ord->engine->AdvanceStripe(s, below_from - ord->pos[s]);
      ord->pos[s] = below_from;
    }
    ord->engine->DrawStripe(s, below_to - below_from);
    ord->pos[s] = below_to;
  }
  RawSampleDelta delta;
  ord->engine->HarvestDelta(&delta);

  *reply = "{\"ok\":true,\"counts\":";
  AppendUintArray(delta.counts, reply);
  if (!delta.fp_sums.empty()) {
    *reply += ",\"fp_sums\":";
    AppendUintArray(delta.fp_sums, reply);
    *reply += ",\"fp_sum_squares\":";
    AppendUintArray(delta.fp_sum_squares, reply);
  }
  reply->push_back('}');
  return Status::OK();
}

/// Apply one coordinator-pushed mutation (or its idempotent replay) to
/// the named graph. The coordinator tells us the fingerprint its own
/// apply chained to; landing anywhere else means the tiers diverged and
/// the reply error gets this incarnation restarted.
Status HandleUpdate(const JsonValue& doc, SessionPool* pool,
                    std::string* reply) {
  const JsonValue* graph_v = doc.Find("graph");
  const JsonValue* action_v = doc.Find("action");
  if (graph_v == nullptr || graph_v->type != JsonValue::Type::kString ||
      action_v == nullptr || action_v->type != JsonValue::Type::kString) {
    return Status::InvalidArgument("update message is malformed");
  }
  EdgeMutation mut;
  if (action_v->string_value == "insert") {
    mut.kind = EdgeMutationKind::kInsert;
  } else if (action_v->string_value == "delete") {
    mut.kind = EdgeMutationKind::kDelete;
  } else {
    return Status::InvalidArgument("update action must be insert or delete");
  }
  uint64_t u = 0, v = 0, expect_fp = 0;
  SAPHYRA_RETURN_NOT_OK(GetUintField(doc, "u", &u));
  SAPHYRA_RETURN_NOT_OK(GetUintField(doc, "v", &v));
  SAPHYRA_RETURN_NOT_OK(GetUintField(doc, "fingerprint", &expect_fp));
  mut.u = static_cast<NodeId>(u);
  mut.v = static_cast<NodeId>(v);

  std::shared_ptr<QuerySession> session;
  SAPHYRA_RETURN_NOT_OK(pool->Acquire(graph_v->string_value, &session));
  if (session->fingerprint() == expect_fp) {
    // Already there: the supervisor's log replay overlapped a direct
    // push. Applying again would double-mutate, so this is the no-op the
    // idempotency contract promises.
    *reply = "{\"ok\":true,\"type\":\"updated\",\"epoch\":" +
             std::to_string(session->epoch()) +
             ",\"fingerprint\":" + std::to_string(expect_fp) + "}";
    return Status::OK();
  }
  UpdateOutcome outcome;
  SAPHYRA_RETURN_NOT_OK(session->ApplyUpdate(mut, &outcome));
  if (outcome.fingerprint != expect_fp) {
    return Status::Internal(
        "update fingerprint divergence: worker chained to " +
        std::to_string(outcome.fingerprint) + ", coordinator expects " +
        std::to_string(expect_fp));
  }
  *reply = "{\"ok\":true,\"type\":\"updated\",\"epoch\":" +
           std::to_string(outcome.epoch) +
           ",\"fingerprint\":" + std::to_string(outcome.fingerprint) + "}";
  return Status::OK();
}

}  // namespace

Status RunWorkerLoop(int fd, SessionPool* pool,
                     const WorkerLoopOptions& options) {
  StateCache cache(options.max_states);
  const std::string hello =
      "{\"type\":\"hello\",\"index\":" + std::to_string(options.index) +
      ",\"pid\":" + std::to_string(::getpid()) + "}";
  SAPHYRA_RETURN_NOT_OK(
      net::SendFrame(fd, hello, Deadline::AfterMillis(kReplyTimeoutMs)));

  for (;;) {
    std::string msg;
    Status st = net::RecvFrame(fd, &msg, Deadline::Never());
    if (!st.ok()) {
      // The coordinator vanished (or restarted us); that is this
      // process's normal end of life, not an error.
      return Status::OK();
    }
    JsonValue doc;
    st = ParseJson(msg, &doc);
    const JsonValue* type = st.ok() ? doc.Find("type") : nullptr;
    const std::string kind =
        type != nullptr && type->type == JsonValue::Type::kString
            ? type->string_value
            : "";
    std::string reply;
    if (kind == "ping") {
      reply = "{\"ok\":true,\"type\":\"pong\"}";
    } else if (kind == "quit") {
      net::SendFrame(fd, "{\"ok\":true,\"type\":\"bye\"}",
                     Deadline::AfterMillis(kReplyTimeoutMs));
      return Status::OK();
    } else if (kind == "wave") {
      // An injected `throw` here simulates a mid-wave crash: no reply,
      // the loop exits, the connection drops, and the supervisor's
      // recovery machinery takes over.
      try {
        fail::MaybeFault("worker.wave");
      } catch (const fail::InjectedFault& fault) {
        return Status::Internal(fault.what());
      }
      Status wave = Status::OK();
      try {
        wave = HandleWave(doc, pool, &cache, &reply);
      } catch (const std::exception& e) {
        wave = Status::Internal(std::string("wave execution threw: ") +
                                e.what());
      }
      if (!wave.ok()) {
        reply = "{\"ok\":false,\"code\":\"";
        reply += StatusCodeWireName(wave.code());
        reply += "\",\"error\":" + JsonQuote(wave.ToString()) + "}";
      }
    } else if (kind == "update") {
      // Same crash-simulation hook as waves: an injected throw drops the
      // connection mid-update, and the supervisor's mutation-log replay
      // brings the restarted incarnation back to the right epoch.
      try {
        fail::MaybeFault("worker.update");
      } catch (const fail::InjectedFault& fault) {
        return Status::Internal(fault.what());
      }
      Status up = Status::OK();
      try {
        up = HandleUpdate(doc, pool, &reply);
      } catch (const std::exception& e) {
        up = Status::Internal(std::string("update execution threw: ") +
                              e.what());
      }
      if (!up.ok()) {
        reply = "{\"ok\":false,\"code\":\"";
        reply += StatusCodeWireName(up.code());
        reply += "\",\"error\":" + JsonQuote(up.ToString()) + "}";
      }
    } else {
      reply =
          "{\"ok\":false,\"code\":\"INVALID_ARGUMENT\",\"error\":\"unknown "
          "message type\"}";
    }
    SAPHYRA_RETURN_NOT_OK(
        net::SendFrame(fd, reply, Deadline::AfterMillis(kReplyTimeoutMs)));
  }
}

}  // namespace saphyra
