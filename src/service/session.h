#ifndef SAPHYRA_SERVICE_SESSION_H_
#define SAPHYRA_SERVICE_SESSION_H_

/// \file
/// QuerySession: the warm half of the serving layer. Opens a graph once
/// (cache-aware, LoadGraphAuto), owns the long-lived state every query
/// shares — the graph, its content fingerprint, the lazily-built warm
/// IspIndex with its component views, and the persistent SharedThreadPool
/// — and answers a stream of heterogeneous queries without ever paying
/// parse/decomposition again. This is what turns the per-process cost
/// profile of `saphyra_rank` (load + index per query) into a per-session
/// one (load + index once, then marginal sampling cost per query); the
/// `serve_warm_speedup` benchmark metric measures exactly that gap.
///
/// Ownership/threading: a session is built once and then immutable from
/// the queries' point of view. Run() is safe to call from multiple
/// threads concurrently — estimator runs only read the shared graph/index
/// and keep their sampling scratch in per-run problem instances; the lazy
/// IspIndex build is guarded by std::call_once; and sample generation
/// shares SharedThreadPool() through per-call task groups
/// (util/thread_pool.h), so concurrent queries do not barrier on each
/// other. Determinism: for a fixed canonicalized request, Run() returns
/// bitwise-identical estimates on every call, cold or warm, whatever the
/// thread count — see DESIGN.md, "Serving determinism contract".

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "bicomp/isp.h"
#include "graph/binary_io.h"
#include "graph/graph.h"
#include "service/query.h"
#include "util/cancel.h"
#include "util/status.h"

namespace saphyra {

class ShardedQuery;

/// \brief Session-wide settings (per-query knobs live on QueryRequest).
struct SessionOptions {
  /// Graph loading (format, cache substitution, mmap) — LoadGraphAuto.
  LoadGraphOptions load;
  /// Default worker threads for queries that leave num_threads at 0.
  uint32_t default_threads = 1;
  /// Build the IspIndex at Open() instead of on the first bc query.
  /// Off by default: sessions serving only ABRA/KADABRA/k-path/closeness
  /// never need it.
  bool eager_index = false;
};

/// \brief A loaded graph plus its warm per-session state, answering
/// queries until destroyed.
class QuerySession {
 public:
  /// \brief Load `graph_path` (text or `.sgr`; cache-aware) and build the
  /// session around it. On success `*out` is ready for Run().
  static Status Open(const std::string& graph_path,
                     const SessionOptions& options,
                     std::unique_ptr<QuerySession>* out);

  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  const Graph& graph() const { return graph_; }
  /// \brief Content digest of the loaded graph: from the `.sgr` header
  /// when the cache recorded one, computed otherwise. Keys the scheduler's
  /// memo LRU, so results cached against one graph can never serve
  /// another.
  uint64_t fingerprint() const { return fingerprint_; }
  bool loaded_from_cache() const { return loaded_from_cache_; }
  const SessionOptions& options() const { return options_; }

  /// \brief The warm ISP index, building it on first use (thread-safe).
  const IspIndex& isp();
  /// \brief Whether the index has been built yet (diagnostics only).
  bool index_built() const { return isp_ != nullptr; }

  /// \brief Answer one query on the warm state. `req` is canonicalized
  /// internally; invalid requests come back as an error result (the
  /// status rides on QueryResult so one bad query in a batch cannot take
  /// the batch down). A request with deadline_ms > 0 gets a cancel token
  /// armed here; on expiry the result covers completed waves only and is
  /// tagged degraded. Thread-safe.
  QueryResult Run(const QueryRequest& req);

 private:
  friend class BatchScheduler;

  QuerySession() = default;

  /// \brief Run() minus validation: `req` must already be canonical. The
  /// scheduler canonicalizes once to derive the cache key and enters
  /// here, instead of paying a second copy + sort/dedup pass per query —
  /// and owns the cancel token (deadline measured from admission, chained
  /// to the server-wide shutdown token). `cancel` may be null; borrowed
  /// for the duration of the call. `shard` non-null routes every sample
  /// wave to the sharded worker tier (service/shard.h) instead of drawing
  /// locally; results are bitwise identical either way, and a shard that
  /// stays lost past the retry budget degrades the result
  /// (degrade_reason = kUnavailable) rather than erroring.
  QueryResult RunCanonical(const QueryRequest& req, const CancelToken* cancel,
                           ShardedQuery* shard = nullptr);

  SessionOptions options_;
  Graph graph_;
  /// Holds the persisted decomposition until the IspIndex adopts it.
  GraphCache cache_;
  uint64_t fingerprint_ = 0;
  bool loaded_from_cache_ = false;
  std::once_flag isp_once_;
  std::unique_ptr<IspIndex> isp_;
};

}  // namespace saphyra

#endif  // SAPHYRA_SERVICE_SESSION_H_
