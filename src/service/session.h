#ifndef SAPHYRA_SERVICE_SESSION_H_
#define SAPHYRA_SERVICE_SESSION_H_

/// \file
/// QuerySession: the warm half of the serving layer. Opens a graph once
/// (cache-aware, LoadGraphAuto), owns the long-lived state every query
/// shares — the graph, its content fingerprint, the lazily-built warm
/// IspIndex with its component views, and the persistent SharedThreadPool
/// — and answers a stream of heterogeneous queries without ever paying
/// parse/decomposition again. This is what turns the per-process cost
/// profile of `saphyra_rank` (load + index per query) into a per-session
/// one (load + index once, then marginal sampling cost per query); the
/// `serve_warm_speedup` benchmark metric measures exactly that gap.
///
/// Dynamic graphs. A session is a sequence of immutable epochs
/// (GraphSnapshot): epoch 0 is the loaded graph, and each accepted
/// {"op":"update"} produces epoch e+1 via a DeltaOverlay mutation +
/// incremental bicomp repair (bicomp/incremental.h), then atomically
/// publishes the new snapshot. Queries pin the snapshot current at their
/// admission and run it to completion — snapshot isolation: an update
/// never changes bits of an in-flight query, and a query admitted after
/// the update sees the new epoch only. Each epoch's fingerprint chains
/// the mutation onto the previous epoch's digest
/// (ChainMutationFingerprint), so memo keys, the sharded tier's state
/// cache, and the multi-graph pool all invalidate exactly the entries
/// the mutation staled — see docs/serving.md, "Dynamic graphs".
///
/// Ownership/threading: Run() is safe to call from multiple threads
/// concurrently — estimator runs only read their pinned snapshot and keep
/// sampling scratch in per-run problem instances; each snapshot's lazy
/// IspIndex build is guarded by std::call_once; and sample generation
/// shares SharedThreadPool() through per-call task groups
/// (util/thread_pool.h). ApplyUpdate is serialized on an internal mutex
/// and may run concurrently with queries. Determinism: for a fixed
/// canonicalized request on a fixed epoch, Run() returns
/// bitwise-identical estimates on every call, cold or warm, whatever the
/// thread count — see DESIGN.md, "Serving determinism contract".

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "bicomp/incremental.h"
#include "bicomp/isp.h"
#include "graph/binary_io.h"
#include "graph/delta_overlay.h"
#include "graph/graph.h"
#include "service/query.h"
#include "util/cancel.h"
#include "util/status.h"

namespace saphyra {

class ShardedQuery;

/// \brief Session-wide settings (per-query knobs live on QueryRequest).
struct SessionOptions {
  /// Graph loading (format, cache substitution, mmap) — LoadGraphAuto.
  LoadGraphOptions load;
  /// Default worker threads for queries that leave num_threads at 0.
  uint32_t default_threads = 1;
  /// Build the IspIndex at Open() instead of on the first bc query.
  /// Off by default: sessions serving only ABRA/KADABRA/k-path/closeness
  /// never need it.
  bool eager_index = false;
  /// Incremental decomposition repair knobs for ApplyUpdate (dirty-region
  /// budget, fallback thread count). Every setting yields the same bytes.
  IncrementalBicompOptions repair;
  /// Rebuild the overlay onto a clean base CSR once this many deltas
  /// (inserted + tombstoned edges) accumulate; 0 compacts on every
  /// update. Compaction changes no served bit — it only bounds the
  /// overlay's merge cost per Materialize.
  uint64_t compact_threshold = 4096;
};

/// \brief One immutable epoch of a session: the graph's CSR, its chained
/// fingerprint, and the (lazily built) warm index, all frozen at publish
/// time. Queries pin the snapshot current at admission via
/// QuerySession::snapshot() and keep every read on it, so updates
/// landing mid-query cannot change any result bit.
class GraphSnapshot {
 public:
  const Graph& graph() const { return graph_; }
  /// \brief Mutation epoch: 0 for the loaded graph, +1 per applied
  /// update.
  uint64_t epoch() const { return epoch_; }
  /// \brief Epoch 0: the content digest of the loaded graph (from the
  /// `.sgr` header when recorded, computed otherwise). Epoch e+1: the
  /// previous epoch's fingerprint chained with the mutation
  /// (ChainMutationFingerprint). Keys the scheduler's memo LRU and the
  /// sharded tier's worker state, so results computed against one epoch
  /// can never serve another.
  uint64_t fingerprint() const { return fingerprint_; }
  /// \brief The warm ISP index of this epoch, building it on first use
  /// (thread-safe; epochs > 0 adopt the repaired decomposition and skip
  /// the DFS).
  const IspIndex& isp() const;
  /// \brief Whether the index has been built yet (diagnostics only).
  bool index_built() const { return isp_ != nullptr; }

  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

 private:
  friend class QuerySession;
  GraphSnapshot() = default;

  Graph graph_;
  /// Decomposition waiting for the IspIndex to adopt it (epoch 0: loaded
  /// from the `.sgr` cache when present; epoch e+1: the repaired one).
  mutable GraphCache cache_;
  uint64_t fingerprint_ = 0;
  uint64_t epoch_ = 0;
  mutable std::once_flag isp_once_;
  mutable std::unique_ptr<IspIndex> isp_;
};

/// \brief What an applied update produced, for the wire result line and
/// the stats.
struct UpdateOutcome {
  uint64_t epoch = 0;        ///< the new epoch number
  uint64_t fingerprint = 0;  ///< the new chained fingerprint
  bool compacted = false;    ///< the overlay rebased onto a clean CSR
  /// Decomposition repair routing of this update (observability only;
  /// either route yields the same bytes).
  bool repair_fell_back = false;
  uint64_t repair_dirty_arcs = 0;
};

/// \brief Fingerprint of epoch `epoch` obtained by applying (kind, u, v)
/// to the epoch with fingerprint `prev`: FNV-1a over (prev, epoch, kind,
/// min(u,v), max(u,v)). Pure and process-independent, so the supervisor
/// can predict the post-update fingerprint its workers must reach.
uint64_t ChainMutationFingerprint(uint64_t prev, uint64_t epoch,
                                  EdgeMutationKind kind, NodeId u, NodeId v);

/// \brief A loaded graph plus its warm per-session state, answering
/// queries until destroyed.
class QuerySession {
 public:
  /// \brief Load `graph_path` (text or `.sgr`; cache-aware) and build the
  /// session around it. On success `*out` is ready for Run().
  static Status Open(const std::string& graph_path,
                     const SessionOptions& options,
                     std::unique_ptr<QuerySession>* out);

  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  /// \brief Pin the current epoch. The returned snapshot is immutable and
  /// outlives any concurrent update; every read a query makes must go
  /// through one pinned snapshot (the scheduler pins at admission).
  std::shared_ptr<const GraphSnapshot> snapshot() const {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    return current_;
  }

  /// \brief Current epoch's graph. Only safe for one-shot reads (startup
  /// logging, size checks); anything spanning waves must pin snapshot().
  const Graph& graph() const { return snapshot()->graph(); }
  /// \brief Current epoch's fingerprint (see GraphSnapshot::fingerprint).
  uint64_t fingerprint() const { return snapshot()->fingerprint(); }
  /// \brief Current mutation epoch (0 = never updated).
  uint64_t epoch() const { return snapshot()->epoch(); }
  /// \brief Whether any update was ever applied. A mutated session must
  /// not be dropped to disk-reload (the pool skips evicting it): the
  /// file still holds epoch 0.
  bool mutated() const { return snapshot()->epoch() != 0; }
  bool loaded_from_cache() const { return loaded_from_cache_; }
  const SessionOptions& options() const { return options_; }

  /// \brief The current epoch's warm ISP index, building it on first use
  /// (thread-safe).
  const IspIndex& isp() { return snapshot()->isp(); }
  /// \brief Whether the current epoch's index has been built yet
  /// (diagnostics only).
  bool index_built() const { return snapshot()->index_built(); }

  /// \brief Apply one edge mutation, producing and publishing the next
  /// epoch. Serialized internally; concurrent queries keep running on
  /// their pinned snapshots. On failure (duplicate insert, delete of a
  /// missing edge, endpoint out of range, self loop → INVALID_ARGUMENT)
  /// the session is unchanged. On success the new epoch's decomposition
  /// is repaired incrementally (bicomp/incremental.h) — bitwise identical
  /// to a from-scratch pass — and `*out`, when non-null, reports the new
  /// epoch/fingerprint and the repair route taken.
  Status ApplyUpdate(const EdgeMutation& mut, UpdateOutcome* out = nullptr);

  /// \brief Answer one query on the warm state. `req` is canonicalized
  /// internally; invalid requests come back as an error result (the
  /// status rides on QueryResult so one bad query in a batch cannot take
  /// the batch down). A request with deadline_ms > 0 gets a cancel token
  /// armed here; on expiry the result covers completed waves only and is
  /// tagged degraded. Thread-safe.
  QueryResult Run(const QueryRequest& req);

 private:
  friend class BatchScheduler;

  QuerySession() = default;

  /// \brief Run() minus validation: `req` must already be canonical and
  /// `snap` is the epoch the caller pinned at admission (all graph/index
  /// reads go through it — snapshot isolation). The scheduler
  /// canonicalizes once to derive the cache key and enters here, instead
  /// of paying a second copy + sort/dedup pass per query — and owns the
  /// cancel token (deadline measured from admission, chained to the
  /// server-wide shutdown token). `cancel` may be null; borrowed for the
  /// duration of the call. `shard` non-null routes every sample wave to
  /// the sharded worker tier (service/shard.h) instead of drawing
  /// locally; results are bitwise identical either way, and a shard that
  /// stays lost past the retry budget degrades the result
  /// (degrade_reason = kUnavailable) rather than erroring.
  QueryResult RunCanonical(const GraphSnapshot& snap, const QueryRequest& req,
                           const CancelToken* cancel,
                           ShardedQuery* shard = nullptr);

  SessionOptions options_;
  bool loaded_from_cache_ = false;

  /// Guards current_ (publish/pin). Updates hold update_mu_ as well;
  /// queries only ever take this one, briefly, inside snapshot().
  mutable std::mutex epoch_mu_;
  std::shared_ptr<const GraphSnapshot> current_;

  /// Serializes ApplyUpdate: overlay state below is only touched under
  /// it. Ordered before epoch_mu_ (ApplyUpdate publishes while holding
  /// it); nothing acquires them the other way around.
  std::mutex update_mu_;
  /// Mutation overlay over overlay_base_'s CSR; created on the first
  /// update, rebased onto the newest epoch at compaction.
  std::unique_ptr<DeltaOverlay> overlay_;
  /// Keeps the overlay's base epoch alive: the overlay borrows that
  /// snapshot's Graph, which epoch churn could otherwise free.
  std::shared_ptr<const GraphSnapshot> overlay_base_;
};

}  // namespace saphyra

#endif  // SAPHYRA_SERVICE_SESSION_H_
