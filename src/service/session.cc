#include "service/session.h"

#include <utility>

#include "baselines/abra.h"
#include "baselines/kadabra.h"
#include "bc/saphyra_bc.h"
#include "closeness/closeness.h"
#include "core/saphyra.h"
#include "kpath/kpath.h"
#include "service/shard.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace saphyra {

namespace {

/// Targets of a whole-graph query: 0..n-1.
std::vector<NodeId> AllNodes(NodeId n) {
  std::vector<NodeId> all(n);
  for (NodeId v = 0; v < n; ++v) all[v] = v;
  return all;
}

/// Report `targets` (or all nodes when empty) out of a whole-network
/// estimate vector — the ABRA/KADABRA shape.
void ReportSubset(const std::vector<double>& bc,
                  const std::vector<NodeId>& targets, QueryResult* res) {
  if (targets.empty()) {
    res->nodes = AllNodes(static_cast<NodeId>(bc.size()));
    res->estimates = bc;
    return;
  }
  res->nodes = targets;
  res->estimates.reserve(targets.size());
  for (NodeId v : targets) res->estimates.push_back(bc[v]);
}

}  // namespace

Status QuerySession::Open(const std::string& graph_path,
                          const SessionOptions& options,
                          std::unique_ptr<QuerySession>* out) {
  std::unique_ptr<QuerySession> session(new QuerySession());
  session->options_ = options;
  SAPHYRA_RETURN_NOT_OK(LoadGraphAuto(graph_path, options.load,
                                      &session->cache_,
                                      &session->loaded_from_cache_));
  session->graph_ = std::move(session->cache_.graph);
  if (session->graph_.num_nodes() < 2) {
    return Status::InvalidArgument("graph too small to serve queries (n=" +
                                   std::to_string(session->graph_.num_nodes()) +
                                   ")");
  }
  // Prefer the fingerprint the `.sgr` header recorded (free); caches
  // written before fingerprints existed, and text parses, pay one O(n+m)
  // pass here — once per session, not per query.
  session->fingerprint_ = session->cache_.content_fingerprint != 0
                              ? session->cache_.content_fingerprint
                              : GraphContentFingerprint(session->graph_);
  if (options.eager_index) session->isp();
  *out = std::move(session);
  return Status::OK();
}

const IspIndex& QuerySession::isp() {
  std::call_once(isp_once_, [this] {
    fail::MaybeFault("session.index");
    isp_ = cache_.has_decomposition
               ? std::make_unique<IspIndex>(graph_, std::move(cache_))
               : std::make_unique<IspIndex>(graph_);
  });
  return *isp_;
}

QueryResult QuerySession::Run(const QueryRequest& request) {
  QueryRequest req = request;
  Status st = CanonicalizeQuery(graph_.num_nodes(), &req);
  if (!st.ok()) {
    QueryResult res;
    res.id = request.id;
    res.estimator = request.estimator;
    res.status = st;
    return res;
  }
  if (req.deadline_ms == 0) return RunCanonical(req, nullptr);
  CancelToken token;
  token.TightenDeadline(Deadline::AfterMillis(req.deadline_ms));
  return RunCanonical(req, &token);
}

QueryResult QuerySession::RunCanonical(const QueryRequest& req,
                                       const CancelToken* cancel,
                                       ShardedQuery* shard) {
  QueryResult res;
  res.id = req.id;
  res.estimator = req.estimator;
  const uint32_t threads =
      req.num_threads != 0 ? req.num_threads : options_.default_threads;

  // Non-null shard: delegate every sample wave to the worker tier. The
  // lambda outlives each estimator call below but not this frame, and the
  // executors it hands out live on `shard`, so borrowing is safe.
  std::function<WaveExecutor*(uint32_t)> wave_executor;
  if (shard != nullptr) {
    wave_executor = [shard](uint32_t ordinal) {
      return shard->ExecutorFor(ordinal);
    };
  }

  // Degraded estimator outcomes surface as results, not errors: the
  // completed-wave estimates are still deterministic, so the client gets
  // them plus the achieved bound and decides whether they are usable.
  auto mark_degraded = [&res](bool degraded, StatusCode reason,
                              double eps_achieved) {
    if (!degraded) return;
    res.degraded = true;
    res.degrade_reason = reason;
    res.epsilon_achieved = eps_achieved;
  };

  Timer timer;
  switch (req.estimator) {
    case EstimatorKind::kBc:
    case EstimatorKind::kBcFull: {
      SaphyraBcOptions opts;
      opts.epsilon = req.epsilon;
      opts.delta = req.delta;
      opts.seed = req.seed;
      opts.top_k = req.top_k;
      opts.strategy = req.strategy;
      opts.traversal = req.traversal;
      opts.num_threads = threads;
      opts.cancel = cancel;
      opts.wave_executor = wave_executor;
      if (req.estimator == EstimatorKind::kBcFull) {
        SaphyraBcResult r = RunSaphyraBcFull(isp(), opts);
        res.samples_used = r.samples_used;
        mark_degraded(r.degraded, r.degrade_reason, r.epsilon_achieved);
        ReportSubset(r.bc, req.targets, &res);
      } else {
        SaphyraBcResult r = RunSaphyraBc(isp(), req.targets, opts);
        res.samples_used = r.samples_used;
        mark_degraded(r.degraded, r.degrade_reason, r.epsilon_achieved);
        res.nodes = req.targets;
        res.estimates = std::move(r.bc);
      }
      break;
    }
    case EstimatorKind::kKPath: {
      // The problem-class path of EstimateKPathCentrality, inlined to keep
      // the sampling diagnostics. Walk sampling has no BFS, so the
      // traversal field does not apply here.
      SaphyraOptions opts;
      opts.epsilon = req.epsilon;
      opts.delta = req.delta;
      opts.seed = req.seed;
      opts.top_k = req.top_k;
      opts.num_threads = threads;
      opts.cancel = cancel;
      std::vector<NodeId> targets =
          req.targets.empty() ? AllNodes(graph_.num_nodes()) : req.targets;
      opts.wave_executor = wave_executor;
      KPathProblem problem(graph_, targets, req.k);
      SaphyraResult r = RunSaphyra(&problem, opts);
      res.samples_used = r.samples_used;
      mark_degraded(r.degraded, r.degrade_reason, r.epsilon_achieved);
      res.nodes = std::move(targets);
      res.estimates = std::move(r.combined_risks);
      break;
    }
    case EstimatorKind::kCloseness: {
      SaphyraOptions opts;
      opts.epsilon = req.epsilon;
      opts.delta = req.delta;
      opts.seed = req.seed;
      opts.top_k = req.top_k;
      opts.num_threads = threads;
      opts.cancel = cancel;
      std::vector<NodeId> targets =
          req.targets.empty() ? AllNodes(graph_.num_nodes()) : req.targets;
      opts.wave_executor = wave_executor;
      HarmonicClosenessProblem problem(graph_, targets);
      problem.set_traversal(req.traversal);
      SaphyraResult r = RunSaphyra(&problem, opts);
      res.samples_used = r.samples_used;
      // RiskToCentrality is linear (×n/(n−1)), so the achieved risk bound
      // converts to centrality units through the same map.
      mark_degraded(r.degraded, r.degrade_reason,
                    problem.RiskToCentrality(r.epsilon_achieved));
      res.nodes = std::move(targets);
      res.estimates.resize(r.combined_risks.size());
      for (size_t i = 0; i < res.estimates.size(); ++i) {
        res.estimates[i] = problem.RiskToCentrality(r.combined_risks[i]);
      }
      break;
    }
    case EstimatorKind::kAbra: {
      AbraOptions opts;
      opts.epsilon = req.epsilon;
      opts.delta = req.delta;
      opts.seed = req.seed;
      opts.top_k = req.top_k;
      opts.num_threads = threads;
      opts.cancel = cancel;
      opts.wave_executor = wave_executor;
      AbraResult r = RunAbra(graph_, opts);
      res.samples_used = r.samples_used;
      mark_degraded(r.degraded, r.degrade_reason, r.epsilon_achieved);
      ReportSubset(r.bc, req.targets, &res);
      break;
    }
    case EstimatorKind::kKadabra: {
      KadabraOptions opts;
      opts.epsilon = req.epsilon;
      opts.delta = req.delta;
      opts.seed = req.seed;
      opts.top_k = req.top_k;
      opts.strategy = req.strategy;
      opts.traversal = req.traversal;
      opts.num_threads = threads;
      opts.cancel = cancel;
      opts.wave_executor = wave_executor;
      KadabraResult r = RunKadabra(graph_, opts);
      res.samples_used = r.samples_used;
      mark_degraded(r.degraded, r.degrade_reason, r.epsilon_achieved);
      ReportSubset(r.bc, req.targets, &res);
      break;
    }
  }
  res.seconds = timer.ElapsedSeconds();
  return res;
}

}  // namespace saphyra
