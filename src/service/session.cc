#include "service/session.h"

#include <utility>

#include "baselines/abra.h"
#include "baselines/kadabra.h"
#include "bc/saphyra_bc.h"
#include "closeness/closeness.h"
#include "core/saphyra.h"
#include "kpath/kpath.h"
#include "service/shard.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/timer.h"

namespace saphyra {

namespace {

/// Targets of a whole-graph query: 0..n-1.
std::vector<NodeId> AllNodes(NodeId n) {
  std::vector<NodeId> all(n);
  for (NodeId v = 0; v < n; ++v) all[v] = v;
  return all;
}

/// Report `targets` (or all nodes when empty) out of a whole-network
/// estimate vector — the ABRA/KADABRA shape.
void ReportSubset(const std::vector<double>& bc,
                  const std::vector<NodeId>& targets, QueryResult* res) {
  if (targets.empty()) {
    res->nodes = AllNodes(static_cast<NodeId>(bc.size()));
    res->estimates = bc;
    return;
  }
  res->nodes = targets;
  res->estimates.reserve(targets.size());
  for (NodeId v : targets) res->estimates.push_back(bc[v]);
}

}  // namespace

uint64_t ChainMutationFingerprint(uint64_t prev, uint64_t epoch,
                                  EdgeMutationKind kind, NodeId u, NodeId v) {
  // Endpoint order is canonicalized so {"edge":[u,v]} and [v,u] chain to
  // the same epoch fingerprint — they are the same undirected mutation.
  if (u > v) std::swap(u, v);
  Fnv1a64 h;
  h.UpdateValue(prev);
  h.UpdateValue(epoch);
  h.UpdateValue(static_cast<uint8_t>(kind));
  h.UpdateValue(u);
  h.UpdateValue(v);
  return h.Digest();
}

const IspIndex& GraphSnapshot::isp() const {
  std::call_once(isp_once_, [this] {
    fail::MaybeFault("session.index");
    isp_ = cache_.has_decomposition
               ? std::make_unique<IspIndex>(graph_, std::move(cache_))
               : std::make_unique<IspIndex>(graph_);
  });
  return *isp_;
}

Status QuerySession::Open(const std::string& graph_path,
                          const SessionOptions& options,
                          std::unique_ptr<QuerySession>* out) {
  std::unique_ptr<QuerySession> session(new QuerySession());
  session->options_ = options;
  auto snapshot = std::shared_ptr<GraphSnapshot>(new GraphSnapshot());
  SAPHYRA_RETURN_NOT_OK(LoadGraphAuto(graph_path, options.load,
                                      &snapshot->cache_,
                                      &session->loaded_from_cache_));
  snapshot->graph_ = std::move(snapshot->cache_.graph);
  if (snapshot->graph_.num_nodes() < 2) {
    return Status::InvalidArgument(
        "graph too small to serve queries (n=" +
        std::to_string(snapshot->graph_.num_nodes()) + ")");
  }
  // Prefer the fingerprint the `.sgr` header recorded (free); caches
  // written before fingerprints existed, and text parses, pay one O(n+m)
  // pass here — once per session, not per query.
  snapshot->fingerprint_ = snapshot->cache_.content_fingerprint != 0
                               ? snapshot->cache_.content_fingerprint
                               : GraphContentFingerprint(snapshot->graph_);
  session->current_ = std::move(snapshot);
  if (options.eager_index) session->isp();
  *out = std::move(session);
  return Status::OK();
}

Status QuerySession::ApplyUpdate(const EdgeMutation& mut, UpdateOutcome* out) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  std::shared_ptr<const GraphSnapshot> cur = snapshot();
  if (overlay_ == nullptr) {
    overlay_base_ = cur;
    overlay_ = std::make_unique<DeltaOverlay>(&overlay_base_->graph());
  }
  // The overlay validates against the *effective* graph and leaves its
  // state untouched on failure, so a rejected update changes nothing.
  SAPHYRA_RETURN_NOT_OK(mut.kind == EdgeMutationKind::kInsert
                            ? overlay_->Insert(mut.u, mut.v)
                            : overlay_->Remove(mut.u, mut.v));

  auto next = std::shared_ptr<GraphSnapshot>(new GraphSnapshot());
  next->graph_ = overlay_->Materialize();
  next->epoch_ = cur->epoch() + 1;
  next->fingerprint_ = ChainMutationFingerprint(
      cur->fingerprint(), next->epoch_, mut.kind, mut.u, mut.v);

  // Repair the decomposition from the current epoch's (building its index
  // now if no query ever had — repairs must chain, and the repaired
  // decomposition seeds the next repair). The new epoch adopts the result
  // lazily, exactly like a `.sgr` cache load would.
  IncrementalBicompStats repair_stats;
  next->cache_.bcc =
      RepairBiconnectedComponents(cur->graph(), cur->isp().bcc(),
                                  next->graph_, mut, options_.repair,
                                  &repair_stats);
  next->cache_.conn = ConnectedComponents(next->graph_);
  next->cache_.views = ComponentViews(next->graph_, next->cache_.bcc);
  next->cache_.tree =
      BlockCutTree::Build(next->graph_, next->cache_.bcc, next->cache_.conn);
  next->cache_.content_fingerprint = 0;  // chained, not content-derived
  next->cache_.has_decomposition = true;

  bool compacted = false;
  if (overlay_->delta_size() >= options_.compact_threshold) {
    // Rebase onto the freshly materialized CSR: subsequent updates merge
    // against it instead of an ever-growing delta set. The new epoch now
    // doubles as the overlay's base, so pin it.
    overlay_->Rebase(&next->graph_);
    overlay_base_ = next;
    compacted = true;
  }
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    current_ = next;
  }
  if (out != nullptr) {
    out->epoch = next->epoch_;
    out->fingerprint = next->fingerprint_;
    out->compacted = compacted;
    out->repair_fell_back = repair_stats.fell_back;
    out->repair_dirty_arcs = repair_stats.dirty_arcs;
  }
  return Status::OK();
}

QueryResult QuerySession::Run(const QueryRequest& request) {
  std::shared_ptr<const GraphSnapshot> snap = snapshot();
  QueryRequest req = request;
  Status st = CanonicalizeQuery(snap->graph().num_nodes(), &req);
  if (!st.ok() || req.op == RequestOp::kUpdate) {
    if (st.ok()) {
      // Direct Run() is the query path; updates go through ApplyUpdate
      // (or the scheduler, which routes them there).
      st = Status::InvalidArgument(
          "update requests must be applied through the scheduler");
    }
    QueryResult res;
    res.id = request.id;
    res.estimator = request.estimator;
    res.status = st;
    return res;
  }
  if (req.deadline_ms == 0) return RunCanonical(*snap, req, nullptr);
  CancelToken token;
  token.TightenDeadline(Deadline::AfterMillis(req.deadline_ms));
  return RunCanonical(*snap, req, &token);
}

QueryResult QuerySession::RunCanonical(const GraphSnapshot& snap,
                                       const QueryRequest& req,
                                       const CancelToken* cancel,
                                       ShardedQuery* shard) {
  QueryResult res;
  res.id = req.id;
  res.estimator = req.estimator;
  const Graph& graph = snap.graph();
  const uint32_t threads =
      req.num_threads != 0 ? req.num_threads : options_.default_threads;

  // Non-null shard: delegate every sample wave to the worker tier. The
  // lambda outlives each estimator call below but not this frame, and the
  // executors it hands out live on `shard`, so borrowing is safe.
  std::function<WaveExecutor*(uint32_t)> wave_executor;
  if (shard != nullptr) {
    wave_executor = [shard](uint32_t ordinal) {
      return shard->ExecutorFor(ordinal);
    };
  }

  // Degraded estimator outcomes surface as results, not errors: the
  // completed-wave estimates are still deterministic, so the client gets
  // them plus the achieved bound and decides whether they are usable.
  auto mark_degraded = [&res](bool degraded, StatusCode reason,
                              double eps_achieved) {
    if (!degraded) return;
    res.degraded = true;
    res.degrade_reason = reason;
    res.epsilon_achieved = eps_achieved;
  };

  Timer timer;
  switch (req.estimator) {
    case EstimatorKind::kBc:
    case EstimatorKind::kBcFull: {
      SaphyraBcOptions opts;
      opts.epsilon = req.epsilon;
      opts.delta = req.delta;
      opts.seed = req.seed;
      opts.top_k = req.top_k;
      opts.strategy = req.strategy;
      opts.traversal = req.traversal;
      opts.num_threads = threads;
      opts.cancel = cancel;
      opts.wave_executor = wave_executor;
      if (req.estimator == EstimatorKind::kBcFull) {
        SaphyraBcResult r = RunSaphyraBcFull(snap.isp(), opts);
        res.samples_used = r.samples_used;
        mark_degraded(r.degraded, r.degrade_reason, r.epsilon_achieved);
        ReportSubset(r.bc, req.targets, &res);
      } else {
        SaphyraBcResult r = RunSaphyraBc(snap.isp(), req.targets, opts);
        res.samples_used = r.samples_used;
        mark_degraded(r.degraded, r.degrade_reason, r.epsilon_achieved);
        res.nodes = req.targets;
        res.estimates = std::move(r.bc);
      }
      break;
    }
    case EstimatorKind::kKPath: {
      // The problem-class path of EstimateKPathCentrality, inlined to keep
      // the sampling diagnostics. Walk sampling has no BFS, so the
      // traversal field does not apply here.
      SaphyraOptions opts;
      opts.epsilon = req.epsilon;
      opts.delta = req.delta;
      opts.seed = req.seed;
      opts.top_k = req.top_k;
      opts.num_threads = threads;
      opts.cancel = cancel;
      std::vector<NodeId> targets =
          req.targets.empty() ? AllNodes(graph.num_nodes()) : req.targets;
      opts.wave_executor = wave_executor;
      KPathProblem problem(graph, targets, req.k);
      SaphyraResult r = RunSaphyra(&problem, opts);
      res.samples_used = r.samples_used;
      mark_degraded(r.degraded, r.degrade_reason, r.epsilon_achieved);
      res.nodes = std::move(targets);
      res.estimates = std::move(r.combined_risks);
      break;
    }
    case EstimatorKind::kCloseness: {
      SaphyraOptions opts;
      opts.epsilon = req.epsilon;
      opts.delta = req.delta;
      opts.seed = req.seed;
      opts.top_k = req.top_k;
      opts.num_threads = threads;
      opts.cancel = cancel;
      std::vector<NodeId> targets =
          req.targets.empty() ? AllNodes(graph.num_nodes()) : req.targets;
      opts.wave_executor = wave_executor;
      HarmonicClosenessProblem problem(graph, targets);
      problem.set_traversal(req.traversal);
      SaphyraResult r = RunSaphyra(&problem, opts);
      res.samples_used = r.samples_used;
      // RiskToCentrality is linear (×n/(n−1)), so the achieved risk bound
      // converts to centrality units through the same map.
      mark_degraded(r.degraded, r.degrade_reason,
                    problem.RiskToCentrality(r.epsilon_achieved));
      res.nodes = std::move(targets);
      res.estimates.resize(r.combined_risks.size());
      for (size_t i = 0; i < res.estimates.size(); ++i) {
        res.estimates[i] = problem.RiskToCentrality(r.combined_risks[i]);
      }
      break;
    }
    case EstimatorKind::kAbra: {
      AbraOptions opts;
      opts.epsilon = req.epsilon;
      opts.delta = req.delta;
      opts.seed = req.seed;
      opts.top_k = req.top_k;
      opts.num_threads = threads;
      opts.cancel = cancel;
      opts.wave_executor = wave_executor;
      AbraResult r = RunAbra(graph, opts);
      res.samples_used = r.samples_used;
      mark_degraded(r.degraded, r.degrade_reason, r.epsilon_achieved);
      ReportSubset(r.bc, req.targets, &res);
      break;
    }
    case EstimatorKind::kKadabra: {
      KadabraOptions opts;
      opts.epsilon = req.epsilon;
      opts.delta = req.delta;
      opts.seed = req.seed;
      opts.top_k = req.top_k;
      opts.strategy = req.strategy;
      opts.traversal = req.traversal;
      opts.num_threads = threads;
      opts.cancel = cancel;
      opts.wave_executor = wave_executor;
      KadabraResult r = RunKadabra(graph, opts);
      res.samples_used = r.samples_used;
      mark_degraded(r.degraded, r.degrade_reason, r.epsilon_achieved);
      ReportSubset(r.bc, req.targets, &res);
      break;
    }
  }
  res.seconds = timer.ElapsedSeconds();
  return res;
}

}  // namespace saphyra
