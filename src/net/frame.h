#ifndef SAPHYRA_NET_FRAME_H_
#define SAPHYRA_NET_FRAME_H_

/// \file
/// Length-prefixed message framing for the shard RPC protocol: every
/// message is a 4-byte little-endian payload length followed by the
/// payload bytes (JSON in practice; the framing layer does not care).
///
/// Both directions are deadline-aware — a stalled peer turns into
/// DEADLINE_EXCEEDED at the armed expiry instead of a wedged coordinator —
/// and handle short reads/writes and EINTR. SIGPIPE is suppressed per-call
/// (MSG_NOSIGNAL), so a dead peer is an IOError, never a process kill.
///
/// Failure injection: `SendFrame` honors the `net.send` failpoint site and
/// `RecvFrame` honors `net.recv` (util/failpoint.h).

#include <cstdint>
#include <string>

#include "util/cancel.h"
#include "util/status.h"

namespace saphyra {
namespace net {

/// Frames larger than this are rejected on both send and receive: a
/// corrupt length prefix must not turn into a multi-gigabyte allocation.
constexpr uint32_t kMaxFrameBytes = 256u << 20;

/// \brief Write one length-prefixed frame, waiting at most until
/// `deadline` for socket writability.
Status SendFrame(int fd, const std::string& payload, Deadline deadline);

/// \brief Read one length-prefixed frame into `*payload`, waiting at most
/// until `deadline`. A clean EOF before any byte of a frame is reported as
/// IOError("connection closed...") — the caller decides whether that peer
/// death was expected.
Status RecvFrame(int fd, std::string* payload, Deadline deadline);

}  // namespace net
}  // namespace saphyra

#endif  // SAPHYRA_NET_FRAME_H_
