#ifndef SAPHYRA_NET_SOCKET_H_
#define SAPHYRA_NET_SOCKET_H_

/// \file
/// Minimal socket plumbing for the sharded serving tier: endpoint parsing
/// ("unix:/path" or "tcp:host:port"), RAII file descriptors, and
/// deadline-aware accept. Everything returns Status — a dead peer is an
/// expected event the supervisor handles, never an exception.
///
/// Failure injection: `Connect` honors the `net.connect` failpoint site
/// (util/failpoint.h), so supervisor restart paths are testable without a
/// flaky peer.

#include <cstdint>
#include <string>

#include "util/cancel.h"
#include "util/status.h"

namespace saphyra {
namespace net {

/// \brief Move-only RAII wrapper over a POSIX file descriptor.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Close the held descriptor (if any) and go invalid.
  void Reset();
  /// Give up ownership without closing.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// \brief A parsed listen/connect address.
struct Endpoint {
  bool is_unix = true;
  std::string path;  ///< unix: filesystem socket path
  std::string host;  ///< tcp: numeric or resolvable host
  uint16_t port = 0;
};

/// \brief Parse "unix:/path/to.sock" or "tcp:host:port" into an Endpoint.
Status ParseEndpoint(const std::string& spec, Endpoint* out);

/// \brief Render an Endpoint back to its "unix:..."/"tcp:..." spelling.
std::string EndpointToString(const Endpoint& ep);

/// \brief Bind + listen on `ep`. A pre-existing unix socket file at the
/// path is unlinked first (the coordinator owns its rendezvous path).
Status Listen(const Endpoint& ep, UniqueFd* out);

/// \brief Connect to `ep` (blocking; worker startup path). Honors the
/// `net.connect` failpoint.
Status Connect(const Endpoint& ep, UniqueFd* out);

/// \brief Accept one connection, waiting at most until `deadline`.
Status Accept(int listen_fd, Deadline deadline, UniqueFd* out);

/// \brief A connected AF_UNIX socket pair (in-process worker tests).
Status SocketPair(UniqueFd* a, UniqueFd* b);

}  // namespace net
}  // namespace saphyra

#endif  // SAPHYRA_NET_SOCKET_H_
