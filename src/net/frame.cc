#include "net/frame.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>

#include <algorithm>

#include "util/failpoint.h"

namespace saphyra {
namespace net {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + strerror(errno);
}

int PollTimeoutMs(Deadline deadline) {
  if (deadline.unbounded()) return -1;
  const int64_t left_ns = deadline.steady_nanos() - Deadline::NowNanos();
  if (left_ns <= 0) return 0;
  const int64_t ms = left_ns / 1000000 + 1;
  return static_cast<int>(std::min<int64_t>(ms, INT32_MAX));
}

/// Block until `fd` is ready for `events` or the deadline expires.
Status WaitReady(int fd, short events, Deadline deadline,
                 const char* what) {
  for (;;) {
    pollfd pfd{fd, events, 0};
    const int timeout = PollTimeoutMs(deadline);
    if (timeout == 0) {
      return Status::DeadlineExceeded(std::string(what) +
                                      " hit the RPC deadline");
    }
    const int ready = poll(&pfd, 1, timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno(std::string("poll(") + what + ")"));
    }
    if (ready == 0) {
      return Status::DeadlineExceeded(std::string(what) +
                                      " hit the RPC deadline");
    }
    return Status::OK();
  }
}

Status SendAll(int fd, const char* data, size_t len, Deadline deadline) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n =
        send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      SAPHYRA_RETURN_NOT_OK(WaitReady(fd, POLLOUT, deadline, "send"));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError(Errno("send"));
  }
  return Status::OK();
}

Status RecvAll(int fd, char* data, size_t len, Deadline deadline,
               bool eof_ok_at_start, bool* clean_eof) {
  size_t got = 0;
  while (got < len) {
    SAPHYRA_RETURN_NOT_OK(WaitReady(fd, POLLIN, deadline, "recv"));
    const ssize_t n = recv(fd, data + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (eof_ok_at_start && got == 0 && clean_eof != nullptr) {
        *clean_eof = true;
      }
      return Status::IOError(got == 0
                                 ? "connection closed by peer"
                                 : "connection closed mid-frame");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::IOError(Errno("recv"));
  }
  return Status::OK();
}

}  // namespace

Status SendFrame(int fd, const std::string& payload, Deadline deadline) {
  SAPHYRA_RETURN_NOT_OK(fail::FaultStatus("net.send"));
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload of " +
                                   std::to_string(payload.size()) +
                                   " bytes exceeds the frame limit");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  char header[4];
  header[0] = static_cast<char>(len & 0xff);
  header[1] = static_cast<char>((len >> 8) & 0xff);
  header[2] = static_cast<char>((len >> 16) & 0xff);
  header[3] = static_cast<char>((len >> 24) & 0xff);
  SAPHYRA_RETURN_NOT_OK(SendAll(fd, header, sizeof(header), deadline));
  return SendAll(fd, payload.data(), payload.size(), deadline);
}

Status RecvFrame(int fd, std::string* payload, Deadline deadline) {
  SAPHYRA_RETURN_NOT_OK(fail::FaultStatus("net.recv"));
  char header[4];
  bool clean_eof = false;
  SAPHYRA_RETURN_NOT_OK(
      RecvAll(fd, header, sizeof(header), deadline, true, &clean_eof));
  const uint32_t len = static_cast<uint32_t>(
      static_cast<unsigned char>(header[0]) |
      (static_cast<unsigned char>(header[1]) << 8) |
      (static_cast<unsigned char>(header[2]) << 16) |
      (static_cast<unsigned char>(header[3]) << 24));
  if (len > kMaxFrameBytes) {
    return Status::IOError("frame length " + std::to_string(len) +
                           " exceeds the frame limit (corrupt stream?)");
  }
  payload->assign(len, '\0');
  if (len == 0) return Status::OK();
  return RecvAll(fd, payload->data(), len, deadline, false, nullptr);
}

}  // namespace net
}  // namespace saphyra
