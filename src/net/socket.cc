#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>

#include "util/failpoint.h"

namespace saphyra {
namespace net {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + strerror(errno);
}

/// Remaining poll() timeout for `deadline` in ms: -1 = wait forever,
/// 0 = already expired (poll still samples readiness once).
int PollTimeoutMs(Deadline deadline) {
  if (deadline.unbounded()) return -1;
  const int64_t left_ns = deadline.steady_nanos() - Deadline::NowNanos();
  if (left_ns <= 0) return 0;
  const int64_t ms = left_ns / 1000000 + 1;  // round up: never spin-poll
  return static_cast<int>(std::min<int64_t>(ms, INT32_MAX));
}

Status FillSockaddrUn(const Endpoint& ep, sockaddr_un* addr) {
  memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (ep.path.empty() || ep.path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("unix socket path empty or longer than " +
                                   std::to_string(sizeof(addr->sun_path) - 1) +
                                   " bytes: \"" + ep.path + "\"");
  }
  memcpy(addr->sun_path, ep.path.data(), ep.path.size());
  return Status::OK();
}

Status FillSockaddrIn(const Endpoint& ep, sockaddr_in* addr) {
  memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("tcp host must be a numeric IPv4 address "
                                   "(got \"" + ep.host + "\")");
  }
  return Status::OK();
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = close(fd_);
    } while (rc != 0 && errno == EINTR);
  }
  fd_ = -1;
}

Status ParseEndpoint(const std::string& spec, Endpoint* out) {
  if (spec.rfind("unix:", 0) == 0) {
    out->is_unix = true;
    out->path = spec.substr(5);
    if (out->path.empty()) {
      return Status::InvalidArgument("unix endpoint has an empty path: \"" +
                                     spec + "\"");
    }
    return Status::OK();
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= rest.size()) {
      return Status::InvalidArgument("tcp endpoint must be tcp:host:port "
                                     "(got \"" + spec + "\")");
    }
    out->is_unix = false;
    out->host = rest.substr(0, colon);
    char* end = nullptr;
    const unsigned long port = strtoul(rest.c_str() + colon + 1, &end, 10);
    if (end == nullptr || *end != '\0' || port == 0 || port > 65535) {
      return Status::InvalidArgument("tcp port out of range in \"" + spec +
                                     "\"");
    }
    out->port = static_cast<uint16_t>(port);
    return Status::OK();
  }
  return Status::InvalidArgument(
      "endpoint must start with unix: or tcp: (got \"" + spec + "\")");
}

std::string EndpointToString(const Endpoint& ep) {
  if (ep.is_unix) return "unix:" + ep.path;
  return "tcp:" + ep.host + ":" + std::to_string(ep.port);
}

Status Listen(const Endpoint& ep, UniqueFd* out) {
  UniqueFd fd(socket(ep.is_unix ? AF_UNIX : AF_INET,
                     SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Status::IOError(Errno("socket"));
  int bind_rc;
  if (ep.is_unix) {
    sockaddr_un addr;
    SAPHYRA_RETURN_NOT_OK(FillSockaddrUn(ep, &addr));
    unlink(ep.path.c_str());  // stale rendezvous file from a crashed run
    bind_rc = bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } else {
    sockaddr_in addr;
    SAPHYRA_RETURN_NOT_OK(FillSockaddrIn(ep, &addr));
    const int one = 1;
    setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    bind_rc = bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  }
  if (bind_rc != 0) {
    return Status::IOError(Errno("bind " + EndpointToString(ep)));
  }
  if (listen(fd.get(), 16) != 0) {
    return Status::IOError(Errno("listen " + EndpointToString(ep)));
  }
  *out = std::move(fd);
  return Status::OK();
}

Status Connect(const Endpoint& ep, UniqueFd* out) {
  SAPHYRA_RETURN_NOT_OK(fail::FaultStatus("net.connect"));
  UniqueFd fd(socket(ep.is_unix ? AF_UNIX : AF_INET,
                     SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Status::IOError(Errno("socket"));
  int rc;
  if (ep.is_unix) {
    sockaddr_un addr;
    SAPHYRA_RETURN_NOT_OK(FillSockaddrUn(ep, &addr));
    do {
      rc = connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
    } while (rc != 0 && errno == EINTR);
  } else {
    sockaddr_in addr;
    SAPHYRA_RETURN_NOT_OK(FillSockaddrIn(ep, &addr));
    do {
      rc = connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
    } while (rc != 0 && errno == EINTR);
  }
  if (rc != 0) {
    return Status::IOError(Errno("connect " + EndpointToString(ep)));
  }
  *out = std::move(fd);
  return Status::OK();
}

Status Accept(int listen_fd, Deadline deadline, UniqueFd* out) {
  for (;;) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int timeout = PollTimeoutMs(deadline);
    const int ready = poll(&pfd, 1, timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("poll(accept)"));
    }
    if (ready == 0) {
      return Status::DeadlineExceeded("accept timed out");
    }
    const int fd = accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Status::IOError(Errno("accept"));
    }
    *out = UniqueFd(fd);
    return Status::OK();
  }
}

Status SocketPair(UniqueFd* a, UniqueFd* b) {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0) {
    return Status::IOError(Errno("socketpair"));
  }
  *a = UniqueFd(fds[0]);
  *b = UniqueFd(fds[1]);
  return Status::OK();
}

}  // namespace net
}  // namespace saphyra
