#include "kpath/kpath.h"

#include <algorithm>
#include <cmath>

#include "stats/vc.h"
#include "util/logging.h"

namespace saphyra {

KPathProblem::KPathProblem(const Graph& g, std::vector<NodeId> targets,
                           uint32_t k)
    : g_(g), targets_(std::move(targets)), k_(k), on_walk_(g.num_nodes()) {
  SAPHYRA_CHECK(k_ >= 1);
  node_to_hyp_.assign(g.num_nodes(), -1);
  for (size_t i = 0; i < targets_.size(); ++i) {
    SAPHYRA_CHECK(targets_[i] < g.num_nodes());
    SAPHYRA_CHECK_MSG(node_to_hyp_[targets_[i]] == -1, "duplicate target");
    node_to_hyp_[targets_[i]] = static_cast<int32_t>(i);
  }
}

double KPathProblem::ComputeExactRisks(std::vector<double>* exact_risks) {
  const double n = static_cast<double>(g_.num_nodes());
  exact_risks->assign(targets_.size(), 0.0);
  for (size_t i = 0; i < targets_.size(); ++i) {
    NodeId v = targets_[i];
    // A 1-hop walk contains v iff it starts at v (any step), or starts at a
    // neighbor u and steps onto v (probability 1/deg(u)).
    double mass = g_.degree(v) > 0 ? 1.0 : 0.0;
    for (NodeId u : g_.neighbors(v)) {
      mass += 1.0 / static_cast<double>(g_.degree(u));
    }
    (*exact_risks)[i] = mass / (n * static_cast<double>(k_));
  }
  // λ̂ = Pr[l = 1] restricted to start nodes that can move at all; isolated
  // start nodes yield an empty walk that never lies in X̂.
  uint64_t movable = 0;
  for (NodeId u = 0; u < g_.num_nodes(); ++u) {
    if (g_.degree(u) > 0) ++movable;
  }
  return static_cast<double>(movable) / n / static_cast<double>(k_);
}

void KPathProblem::SampleApproxLosses(Rng* rng, std::vector<uint32_t>* hits) {
  const NodeId n = g_.num_nodes();
  // Rejection against the exact subspace: resample while l == 1 with a
  // movable start (exactly the walks X̂ covers).
  for (;;) {
    NodeId u = static_cast<NodeId>(rng->UniformInt(n));
    uint32_t l = 1 + static_cast<uint32_t>(rng->UniformInt(k_));
    if (l == 1 && g_.degree(u) > 0) continue;  // in X̂
    walk_.clear();
    walk_.push_back(u);
    NodeId cur = u;
    for (uint32_t step = 0; step < l; ++step) {
      if (g_.degree(cur) == 0) break;
      cur = g_.neighbors(cur)[rng->UniformInt(g_.degree(cur))];
      walk_.push_back(cur);
    }
    // Report distinct targets on the walk, first-occurrence order: one
    // epoch-reset membership set instead of O(len²) pairwise compares.
    on_walk_.BeginEpoch();
    for (NodeId v : walk_) {
      if (on_walk_.Test(v)) continue;
      on_walk_.Mark(v);
      int32_t h = node_to_hyp_[v];
      if (h >= 0) hits->push_back(static_cast<uint32_t>(h));
    }
    return;
  }
}

double KPathProblem::VcDimension() const {
  return PiMaxVcBound(static_cast<uint64_t>(k_) + 1);
}

std::vector<double> EstimateKPathCentrality(const Graph& g,
                                            const std::vector<NodeId>& targets,
                                            uint32_t k,
                                            const SaphyraOptions& options) {
  KPathProblem problem(g, targets, k);
  SaphyraResult res = RunSaphyra(&problem, options);
  return res.combined_risks;
}

namespace {

/// Recursive exhaustive enumeration: extend the walk, and at every length
/// 1..k record the membership probability mass for each target.
void Enumerate(const Graph& g, std::vector<NodeId>* walk, uint32_t remaining,
               double prob, const std::vector<int32_t>& node_to_hyp,
               std::vector<double>* acc) {
  if (remaining == 0) {
    // Credit each distinct target on this completed walk.
    for (size_t i = 0; i < walk->size(); ++i) {
      int32_t h = node_to_hyp[(*walk)[i]];
      if (h < 0) continue;
      bool seen = false;
      for (size_t j = 0; j < i && !seen; ++j) seen = (*walk)[j] == (*walk)[i];
      if (!seen) (*acc)[h] += prob;
    }
    return;
  }
  NodeId cur = walk->back();
  if (g.degree(cur) == 0) {
    // Dead end: the truncated walk is what the sampler would produce.
    Enumerate(g, walk, 0, prob, node_to_hyp, acc);
    return;
  }
  double step = prob / static_cast<double>(g.degree(cur));
  for (NodeId nxt : g.neighbors(cur)) {
    walk->push_back(nxt);
    Enumerate(g, walk, remaining - 1, step, node_to_hyp, acc);
    walk->pop_back();
  }
}

}  // namespace

std::vector<double> ExactKPathCentralityBruteForce(
    const Graph& g, const std::vector<NodeId>& targets, uint32_t k) {
  SAPHYRA_CHECK(k >= 1);
  std::vector<int32_t> node_to_hyp(g.num_nodes(), -1);
  for (size_t i = 0; i < targets.size(); ++i) {
    node_to_hyp[targets[i]] = static_cast<int32_t>(i);
  }
  std::vector<double> acc(targets.size(), 0.0);
  const double n = static_cast<double>(g.num_nodes());
  std::vector<NodeId> walk;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (uint32_t l = 1; l <= k; ++l) {
      walk.clear();
      walk.push_back(u);
      Enumerate(g, &walk, l, 1.0 / (n * static_cast<double>(k)),
                node_to_hyp, &acc);
    }
  }
  return acc;
}

}  // namespace saphyra
