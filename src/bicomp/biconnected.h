#ifndef SAPHYRA_BICOMP_BICONNECTED_H_
#define SAPHYRA_BICOMP_BICONNECTED_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace saphyra {

/// Component id for arcs that belong to no biconnected component
/// (never produced for arcs of a valid graph; used as a sentinel).
constexpr uint32_t kInvalidComp = static_cast<uint32_t>(-1);

/// \brief Biconnected (2-vertex-connected) decomposition of a graph.
///
/// Computed with an iterative Hopcroft–Tarjan DFS (§IV-A of the paper,
/// citing [43]) or the parallel Tarjan–Vishkin pass below. Every undirected
/// edge belongs to exactly one biconnected component; a node belongs to
/// every component one of its incident edges belongs to. Nodes in more than
/// one component are cutpoints: removing one disconnects the graph (Fig. 2
/// of the paper).
///
/// Canonicalization contract: component ids are assigned in order of each
/// component's smallest CSR arc index, which makes every field of this
/// struct a pure function of the graph — independent of the algorithm,
/// traversal order, and thread count that produced it. The serial and
/// parallel passes both honor this, so persisted `.sgr` decomposition
/// sections are bitwise identical whichever pass wrote them
/// (tests/bicomp_differential_test.cc pins this).
struct BiconnectedComponents {
  /// Number of biconnected components (ℓ in the paper).
  uint32_t num_components = 0;

  /// Per CSR arc (see Graph::offset), the id of the component the
  /// underlying undirected edge belongs to. Both directions of an edge get
  /// the same label. The samplers use this to restrict BFS to one component.
  std::vector<uint32_t> arc_component;

  /// is_cutpoint[v] == 1 iff v is an articulation point.
  std::vector<uint8_t> is_cutpoint;

  /// Sorted node lists per component. A cutpoint appears in every component
  /// it belongs to, so the total size is n' = Σ|C_i| >= n.
  std::vector<std::vector<NodeId>> component_nodes;

  /// For every node, the id of one component containing it (kInvalidComp
  /// for isolated nodes). For non-cutpoints this is *the* component.
  std::vector<uint32_t> node_component;

  /// \brief Number of biconnected components node v belongs to.
  uint32_t NumComponentsOf(NodeId v) const {
    return node_component[v] == kInvalidComp ? 0
           : (is_cutpoint[v] ? cutpoint_comp_count_[v] : 1);
  }

  /// \brief Reverse-arc map: rev_arc[e] is the CSR index of arc (v,u) given
  /// arc e = (u,v). Shared with the samplers.
  std::vector<EdgeIndex> rev_arc;

  // Internal: per-node component multiplicity for cutpoints.
  std::vector<uint32_t> cutpoint_comp_count_;
};

/// \brief Run the serial decomposition. O(n + m).
BiconnectedComponents ComputeBiconnectedComponents(const Graph& g);

/// \brief Parallel decomposition on SharedThreadPool: a Tarjan–Vishkin
/// style vertex labeling over a BFS spanning forest (spanning forest +
/// preorder ranges + low/high sweeps), with no recursion and no
/// depth-proportional stack — safe on graphs whose DFS tree is millions of
/// levels deep. Output is field-for-field identical to
/// ComputeBiconnectedComponents (see the canonicalization contract above).
///
/// `num_threads` = 0 sizes the pass to the shared pool's width; 1 delegates
/// to the serial oracle; N > 1 uses N logical chunks (chunk boundaries
/// depend only on N, so results are reproducible even when the pool has
/// fewer workers). Every setting produces the same bytes.
BiconnectedComponents ComputeBiconnectedComponentsParallel(
    const Graph& g, uint32_t num_threads = 0);

/// \brief The decomposition with an explicit DFS depth guard: fails with
/// FailedPrecondition once the (heap-allocated) DFS stack would exceed
/// `max_depth` frames, instead of spending unbounded memory on a
/// path-like graph. `max_depth` = 0 means unlimited. On error `*out` is
/// left in an unspecified state and must not be used.
Status ComputeBiconnectedComponentsBounded(const Graph& g, uint64_t max_depth,
                                           BiconnectedComponents* out);

/// \brief Compute the reverse-arc map alone (used by tests/samplers).
std::vector<EdgeIndex> ComputeReverseArcs(const Graph& g);

/// \brief Canonical finalization shared by the decomposition passes.
///
/// On entry `out->arc_component` holds a provisional per-arc labeling
/// (values < `label_space`, both directions of an edge sharing a label)
/// that partitions the arcs into the graph's biconnected components —
/// with any label values, in any order. The helper renumbers the labels
/// canonically (ascending smallest CSR arc index — the contract above),
/// sets num_components, and rebuilds component_nodes, node_component and
/// the cutpoint multiplicities from the labels. With `derive_cutpoints`
/// set, is_cutpoint is derived as multiplicity > 1 (a node is an
/// articulation point iff it belongs to at least two components, the
/// incremental repair path); otherwise the caller's is_cutpoint is kept
/// and checked consistent (the serial pass cross-validates its Tarjan
/// cutpoints this way). rev_arc is untouched.
///
/// Because every derived field is a pure function of the arc partition,
/// any pass that produces the correct partition — serial DFS, parallel
/// labeling, or incremental repair — ends up bitwise identical after
/// this finalization.
void FinalizeBicompFields(const Graph& g, uint32_t label_space,
                          bool derive_cutpoints, BiconnectedComponents* out);

}  // namespace saphyra

#endif  // SAPHYRA_BICOMP_BICONNECTED_H_
