#ifndef SAPHYRA_BICOMP_INCREMENTAL_H_
#define SAPHYRA_BICOMP_INCREMENTAL_H_

/// \file
/// Incremental repair of the biconnected decomposition under one edge
/// mutation — the serving tier's alternative to re-running a full pass
/// on every {"op":"update"} request.
///
/// The repair exploits the two classic locality facts about biconnected
/// components:
///   - inserting {u,v} inside one connected component merges exactly the
///     blocks on the block-cut-tree path between u and v (plus the new
///     edge) into one block; every block off that path is untouched.
///     Inserting across components (or at an isolated endpoint) adds the
///     new edge as its own bridge block and touches nothing else.
///   - deleting an edge can only split the block that contained it; all
///     other blocks are untouched.
/// So the repair transfers the old per-arc labels onto the new CSR,
/// recomputes the serial decomposition on the small "dirty" edge set
/// (path-union on insert, the containing block on delete), grafts the
/// sub-labels back, and reruns the shared canonical finalization
/// (FinalizeBicompFields). Because every derived field is a pure function
/// of the arc partition and the finalization is shared, the repaired
/// struct is BITWISE identical to ComputeBiconnectedComponents(new_graph)
/// — the property tests/incremental_bicomp_test.cc and the mutation
/// differential harness pin.
///
/// One mutation per call, by design: the dirty-region computation is
/// exact for a single edge change, whereas batching mutations can route
/// the true block-cut-tree path through blocks the stale tree no longer
/// describes. The serving tier applies one update request at a time
/// anyway, so the decomposition is exact after every apply.
///
/// When the dirty region exceeds `max_dirty_fraction` of the graph's
/// arcs (a mutation bridging two huge blocks), repairing costs about as
/// much as recomputing — the repair falls back to the parallel pass,
/// which honors the same canonicalization contract, so the fallback is
/// invisible in the output bytes.

#include <cstdint>

#include "bicomp/biconnected.h"
#include "graph/graph.h"

namespace saphyra {

enum class EdgeMutationKind : uint8_t { kInsert, kDelete };

/// \brief One undirected edge mutation (u < v not required).
struct EdgeMutation {
  EdgeMutationKind kind = EdgeMutationKind::kInsert;
  NodeId u = 0;
  NodeId v = 0;
};

struct IncrementalBicompOptions {
  /// Fall back to the full parallel pass when the dirty region exceeds
  /// this fraction of the new graph's arcs.
  double max_dirty_fraction = 0.25;
  /// Thread count for the fallback pass (0 = shared pool width, 1 =
  /// serial). Any value produces the same bytes (canonicalization
  /// contract).
  uint32_t fallback_threads = 1;
};

/// \brief Observability of one repair (tests pin the routing decisions).
struct IncrementalBicompStats {
  bool fell_back = false;      ///< full parallel pass ran instead
  uint64_t dirty_arcs = 0;     ///< arcs of the recomputed region
  uint32_t dirty_blocks = 0;   ///< old components in the dirty set
};

/// \brief Repair `old_bcc` — the decomposition of `old_graph` — into the
/// decomposition of `new_graph`, which must differ from `old_graph` by
/// exactly the single mutation `mut` (same node count; the edge present
/// on exactly one side). Bitwise identical to a from-scratch
/// ComputeBiconnectedComponents(new_graph).
BiconnectedComponents RepairBiconnectedComponents(
    const Graph& old_graph, const BiconnectedComponents& old_bcc,
    const Graph& new_graph, const EdgeMutation& mut,
    const IncrementalBicompOptions& opts = {},
    IncrementalBicompStats* stats = nullptr);

}  // namespace saphyra

#endif  // SAPHYRA_BICOMP_INCREMENTAL_H_
