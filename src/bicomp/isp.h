#ifndef SAPHYRA_BICOMP_ISP_H_
#define SAPHYRA_BICOMP_ISP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bicomp/biconnected.h"
#include "bicomp/block_cut_tree.h"
#include "bicomp/component_view.h"
#include "graph/connectivity.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace saphyra {

struct GraphCache;  // graph/binary_io.h

/// \brief Index construction knobs.
struct IspOptions {
  /// Threads for the biconnected decomposition: 0 sizes the parallel pass
  /// to the shared pool's width, 1 runs the serial Hopcroft–Tarjan oracle,
  /// N > 1 runs the parallel pass with N logical chunks. Every setting
  /// produces a bitwise-identical decomposition (the canonicalization
  /// contract in bicomp/biconnected.h), so this is purely a speed knob.
  uint32_t bicomp_threads = 0;
};

/// \brief Index over the intra-component shortest-path (ISP) sample space
/// (§IV-A of the paper).
///
/// Built once per graph, independent of the target subset. Bundles the
/// biconnected decomposition, block-cut tree/out-reach sets, and everything
/// derived from them in closed form:
///   * pair mass q_st = r_i(s)·r_i(t) / (n(n−1))  (ordered pairs),
///   * per-component mass W_i = Σ_{s∈C_i} r_i(s)(csize−r_i(s))
///     (= q-mass of C_i scaled by n(n−1)),
///   * γ = Σ_i W_i / (n(n−1))  (Eq. 19),
///   * break-point centrality bc_a(v)  (Eq. 21),
/// plus O(1) alias tables for the multistage sampler of Algorithm 2.
///
/// Convention note: the paper's Eq. 21 collapses the break-point sum to a
/// single term, which counts unordered pairs when a cutpoint belongs to
/// exactly two components. We use the general ordered-pair form
///   bc_a(v) = 1/(n(n−1)) · Σ_{C_i ∋ v} |T_i(v)|·(csize−1−|T_i(v)|),
/// which matches Eq. 3's ordered-pair definition of bc for any multiplicity;
/// the identity bc(v) = γ·E_{D_c}[g(v,p)] + bc_a(v) (Lemma 13) is verified
/// against exhaustive enumeration in the tests.
class IspIndex {
 public:
  /// \brief Build the full index. O(n + m). The decomposition runs on the
  /// shared pool by default; see IspOptions::bicomp_threads.
  explicit IspIndex(const Graph& g, const IspOptions& opts = IspOptions());

  /// \brief Build the index from a persisted decomposition (a `.sgr` cache
  /// loaded by graph/binary_io.h), skipping the biconnected DFS, the
  /// connectivity pass, the block-cut-tree DP and the view materialization.
  /// `g` must be the cache's own graph (typically
  /// `std::move(cache.graph)` into stable storage first) and
  /// `cache.has_decomposition` must hold; only the closed-form tables
  /// (γ, bc_a, alias tables) are recomputed — O(Σ|C_i|).
  IspIndex(const Graph& g, GraphCache&& cache);

  IspIndex(const IspIndex&) = delete;
  IspIndex& operator=(const IspIndex&) = delete;

  const Graph& graph() const { return *g_; }
  const BiconnectedComponents& bcc() const { return bcc_; }
  const BlockCutTree& tree() const { return tree_; }
  const ComponentLabels& conn() const { return conn_; }

  /// \brief Compact relabeled CSR of every biconnected component; the
  /// filter-free substrate of the Gen_bc sampler's restricted BFS.
  const ComponentViews& views() const { return views_; }

  /// \brief Number of biconnected components ℓ.
  uint32_t num_components() const { return bcc_.num_components; }

  /// \brief Normalization factor γ of the ISP distribution (Eq. 19).
  double gamma() const { return gamma_; }

  /// \brief Break-point centrality bc_a(v) (Eq. 21; 0 for non-cutpoints).
  double bca(NodeId v) const { return bca_[v]; }

  /// \brief Unnormalized component mass W_i (q-mass × n(n−1)).
  double comp_weight(uint32_t c) const { return comp_weight_[c]; }

  /// \brief Σ_i W_i = γ·n(n−1).
  double total_weight() const { return total_weight_; }

  /// \brief Out-reach r_i(v) for member v of component c.
  uint64_t OutReach(uint32_t c, NodeId v) const {
    return tree_.OutReach(c, v);
  }

  /// \brief q_st for s,t members of component c (ordered-pair mass).
  double PairMass(uint32_t c, NodeId s, NodeId t) const {
    double n = static_cast<double>(g_->num_nodes());
    return static_cast<double>(OutReach(c, s)) *
           static_cast<double>(OutReach(c, t)) / (n * (n - 1.0));
  }

  /// \brief All biconnected components containing node v (1 element for
  /// non-cutpoints, empty for isolated nodes).
  std::vector<uint32_t> ComponentsOf(NodeId v) const;

  /// \brief Stage 2 of Algorithm 2: source s ∈ C_c with probability
  /// r_c(s)(csize−r_c(s)) / W_c.
  NodeId SampleSource(uint32_t c, Rng* rng) const;

  /// \brief Stage 3 of Algorithm 2: target t ∈ C_c \ {s} with probability
  /// r_c(t) / (csize − r_c(s)).
  NodeId SampleTarget(uint32_t c, NodeId s, Rng* rng) const;

 private:
  /// Shared tail of both constructors: the closed-form tables derived from
  /// the decomposition (γ, W_i, bc_a, alias tables).
  void BuildDerivedTables();

  const Graph* g_;
  BiconnectedComponents bcc_;
  ComponentLabels conn_;
  BlockCutTree tree_;
  ComponentViews views_;
  double gamma_ = 0.0;
  double total_weight_ = 0.0;
  std::vector<double> comp_weight_;
  std::vector<double> bca_;
  // Alias tables per component, indices into bcc_.component_nodes[c].
  std::vector<AliasTable> source_alias_;
  std::vector<AliasTable> target_alias_;
  // Per-component out-reach values aligned with component_nodes[c], plus
  // their sum (= csize): needed for the no-rejection fallback in
  // SampleTarget when one node holds most of the r-mass.
  std::vector<std::vector<double>> target_weights_;
  std::vector<double> target_mass_;
};

/// \brief Personalization of the ISP space to a target subset A (§IV-A).
///
/// Restricts the sample space to components touching A (the PISP space
/// X_c^(A), Eq. 22) and exposes η (Eq. 23) and stage 1 of Algorithm 2.
class PersonalizedSpace {
 public:
  /// \brief Personalize `isp` to `targets` (= A). Duplicate targets are
  /// rejected by SAPHYRA_CHECK; order defines hypothesis indices.
  PersonalizedSpace(const IspIndex& isp, std::vector<NodeId> targets);

  const IspIndex& isp() const { return *isp_; }
  const std::vector<NodeId>& targets() const { return targets_; }

  /// \brief η = PISP mass / ISP mass (Eq. 23). 0 if A touches no component.
  double eta() const { return eta_; }

  /// \brief Component ids in I(A), sorted.
  const std::vector<uint32_t>& component_ids() const { return comp_ids_; }

  /// \brief Hypothesis index of node v in `targets`, or -1.
  int32_t HypothesisIndex(NodeId v) const { return node_to_hyp_[v]; }

  /// \brief Stage 1 of Algorithm 2: component C_i, i ∈ I(A), with
  /// probability W_i / (η·ΣW).
  uint32_t SampleComponent(Rng* rng) const;

 private:
  const IspIndex* isp_;
  std::vector<NodeId> targets_;
  std::vector<uint32_t> comp_ids_;
  std::vector<int32_t> node_to_hyp_;
  double eta_ = 0.0;
  AliasTable comp_alias_;
};

}  // namespace saphyra

#endif  // SAPHYRA_BICOMP_ISP_H_
