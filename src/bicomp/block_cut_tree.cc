#include "bicomp/block_cut_tree.h"

#include <algorithm>

#include "util/logging.h"

namespace saphyra {

BlockCutTree BlockCutTree::Build(const Graph& g,
                                 const BiconnectedComponents& bcc,
                                 const ComponentLabels& conn) {
  BlockCutTree t;
  t.is_cutpoint_ = &bcc.is_cutpoint;
  t.conn_ = &conn;
  t.conn_sizes_.assign(conn.size.begin(), conn.size.end());

  const uint32_t num_comps = bcc.num_components;
  t.conn_size_of_comp_.assign(num_comps, 0);
  for (uint32_t c = 0; c < num_comps; ++c) {
    if (!bcc.component_nodes[c].empty()) {
      NodeId rep = bcc.component_nodes[c][0];
      t.conn_size_of_comp_[c] = conn.size[conn.component[rep]];
    }
  }

  // --- Build the block-cut tree ---------------------------------------
  // Tree vertices: [0, num_comps) are components; cutpoints follow.
  std::vector<NodeId> cutpoints;
  std::vector<uint32_t> cut_tree_id(g.num_nodes(), kInvalidComp);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (bcc.is_cutpoint[v]) {
      cut_tree_id[v] = num_comps + static_cast<uint32_t>(cutpoints.size());
      cutpoints.push_back(v);
    }
  }
  const uint32_t num_tree = num_comps + static_cast<uint32_t>(cutpoints.size());
  std::vector<std::vector<uint32_t>> tree_adj(num_tree);
  for (uint32_t c = 0; c < num_comps; ++c) {
    for (NodeId v : bcc.component_nodes[c]) {
      if (bcc.is_cutpoint[v]) {
        tree_adj[c].push_back(cut_tree_id[v]);
        tree_adj[cut_tree_id[v]].push_back(c);
      }
    }
  }

  // Vertex weights: each graph node is counted exactly once in the tree --
  // non-cutpoints inside their unique component, cutpoints as their own
  // tree vertex.
  std::vector<uint64_t> weight(num_tree, 0);
  for (uint32_t c = 0; c < num_comps; ++c) {
    uint64_t w = 0;
    for (NodeId v : bcc.component_nodes[c]) {
      if (!bcc.is_cutpoint[v]) ++w;
    }
    weight[c] = w;
  }
  for (uint32_t i = 0; i < cutpoints.size(); ++i) {
    weight[num_comps + i] = 1;
  }

  // --- Subtree weights via iterative DFS per tree component -----------
  std::vector<uint64_t> subtree(num_tree, 0);
  std::vector<uint32_t> parent(num_tree, kInvalidComp);
  std::vector<uint8_t> visited(num_tree, 0);
  std::vector<uint32_t> order;  // DFS preorder; reverse gives postorder
  order.reserve(num_tree);
  std::vector<uint64_t> tree_total(num_tree, 0);  // per root, set later

  for (uint32_t root = 0; root < num_tree; ++root) {
    if (visited[root]) continue;
    // Skip isolated tree vertices that correspond to empty components.
    visited[root] = 1;
    size_t first = order.size();
    order.push_back(root);
    std::vector<uint32_t> stack{root};
    while (!stack.empty()) {
      uint32_t x = stack.back();
      stack.pop_back();
      for (uint32_t y : tree_adj[x]) {
        if (!visited[y]) {
          visited[y] = 1;
          parent[y] = x;
          order.push_back(y);
          stack.push_back(y);
        }
      }
    }
    // Accumulate child subtrees bottom-up (reverse preorder is a valid
    // topological order for this).
    uint64_t total = 0;
    for (size_t i = order.size(); i-- > first;) {
      uint32_t x = order[i];
      subtree[x] += weight[x];
      if (parent[x] != kInvalidComp) {
        subtree[parent[x]] += subtree[x];
      } else {
        total = subtree[x];
      }
    }
    for (size_t i = first; i < order.size(); ++i) tree_total[order[i]] = total;
  }

  // --- Out-reach for every (component, cutpoint) pair ------------------
  // S(v, C_i) = weight hanging on the C_i side of cutpoint v (excluding v);
  // r_i(v) = conn_size − S(v, C_i).
  for (uint32_t c = 0; c < num_comps; ++c) {
    const uint64_t conn_size = t.conn_size_of_comp_[c];
    for (NodeId v : bcc.component_nodes[c]) {
      if (!bcc.is_cutpoint[v]) continue;
      uint32_t tv = cut_tree_id[v];
      uint64_t side;
      if (parent[c] == tv) {
        side = subtree[c];  // c is a child of v in the rooted tree
      } else {
        SAPHYRA_CHECK(parent[tv] == c);
        side = tree_total[tv] - subtree[tv];  // c is v's parent
      }
      SAPHYRA_CHECK(side < conn_size);
      t.cut_reach_.emplace(Key(c, v), conn_size - side);
    }
  }
  return t;
}

BlockCutTree BlockCutTree::FromParts(
    const BiconnectedComponents& bcc, const ComponentLabels& conn,
    std::vector<uint64_t> conn_size_of_comp,
    const std::vector<std::pair<uint64_t, uint64_t>>& cut_reach) {
  BlockCutTree t;
  t.is_cutpoint_ = &bcc.is_cutpoint;
  t.conn_ = &conn;
  t.conn_sizes_.assign(conn.size.begin(), conn.size.end());
  t.conn_size_of_comp_ = std::move(conn_size_of_comp);
  t.cut_reach_.reserve(cut_reach.size());
  for (const auto& [key, reach] : cut_reach) t.cut_reach_.emplace(key, reach);
  return t;
}

}  // namespace saphyra
