#include "bicomp/isp.h"

#include <algorithm>

#include "graph/binary_io.h"
#include "util/logging.h"

namespace saphyra {

IspIndex::IspIndex(const Graph& g, const IspOptions& opts)
    : g_(&g),
      bcc_(opts.bicomp_threads == 1
               ? ComputeBiconnectedComponents(g)
               : ComputeBiconnectedComponentsParallel(g,
                                                      opts.bicomp_threads)),
      conn_(ConnectedComponents(g)),
      tree_(BlockCutTree::Build(g, bcc_, conn_)),
      views_(g, bcc_) {
  BuildDerivedTables();
}

IspIndex::IspIndex(const Graph& g, GraphCache&& cache)
    : g_(&g),
      bcc_(std::move(cache.bcc)),
      conn_(std::move(cache.conn)),
      tree_(std::move(cache.tree)),
      views_(std::move(cache.views)) {
  SAPHYRA_CHECK_MSG(cache.has_decomposition,
                    "cache holds no decomposition; use IspIndex(g)");
  SAPHYRA_CHECK_MSG(bcc_.arc_component.size() == g.num_arcs() &&
                        conn_.component.size() == g.num_nodes(),
                    "cached decomposition does not match the graph");
  tree_.Rebind(bcc_, conn_);
  BuildDerivedTables();
}

void IspIndex::BuildDerivedTables() {
  const Graph& g = *g_;
  const double n = static_cast<double>(g.num_nodes());
  const double pair_norm = n * (n - 1.0);
  const uint32_t num_comps = bcc_.num_components;

  comp_weight_.assign(num_comps, 0.0);
  source_alias_.resize(num_comps);
  target_alias_.resize(num_comps);
  target_weights_.resize(num_comps);
  target_mass_.assign(num_comps, 0.0);
  std::vector<double> src_w;
  for (uint32_t c = 0; c < num_comps; ++c) {
    const auto& nodes = bcc_.component_nodes[c];
    const double csize =
        static_cast<double>(tree_.conn_size_of_comp(c));
    src_w.clear();
    auto& tgt_w = target_weights_[c];
    tgt_w.clear();
    double w = 0.0, mass = 0.0;
    for (NodeId v : nodes) {
      double r = static_cast<double>(tree_.OutReach(c, v));
      double sw = r * (csize - r);
      src_w.push_back(sw);
      tgt_w.push_back(r);
      w += sw;
      mass += r;
    }
    comp_weight_[c] = w;
    target_mass_[c] = mass;
    total_weight_ += w;
    // A component of a 2-node connected component (a single isolated edge)
    // has zero source mass; it can never be sampled, so skip its tables.
    if (w > 0.0) {
      source_alias_[c] = AliasTable(src_w);
      target_alias_[c] = AliasTable(tgt_w);
    }
  }
  gamma_ = g.num_nodes() >= 2 ? total_weight_ / pair_norm : 0.0;

  // Break-point centrality bc_a (Eq. 21, ordered-pair form).
  bca_.assign(g.num_nodes(), 0.0);
  for (uint32_t c = 0; c < num_comps; ++c) {
    const double csize = static_cast<double>(tree_.conn_size_of_comp(c));
    for (NodeId v : bcc_.component_nodes[c]) {
      if (!bcc_.is_cutpoint[v]) continue;
      double hang = static_cast<double>(tree_.HangSize(c, v));
      bca_[v] += hang * (csize - 1.0 - hang);
    }
  }
  if (g.num_nodes() >= 2) {
    for (auto& b : bca_) b /= pair_norm;
  }
}

std::vector<uint32_t> IspIndex::ComponentsOf(NodeId v) const {
  std::vector<uint32_t> comps;
  EdgeIndex base = g_->offset(v);
  for (NodeId i = 0; i < g_->degree(v); ++i) {
    comps.push_back(bcc_.arc_component[base + i]);
  }
  std::sort(comps.begin(), comps.end());
  comps.erase(std::unique(comps.begin(), comps.end()), comps.end());
  return comps;
}

NodeId IspIndex::SampleSource(uint32_t c, Rng* rng) const {
  SAPHYRA_CHECK(comp_weight_[c] > 0.0);
  return bcc_.component_nodes[c][source_alias_[c].Sample(rng)];
}

NodeId IspIndex::SampleTarget(uint32_t c, NodeId s, Rng* rng) const {
  const auto& nodes = bcc_.component_nodes[c];
  // A 2-node component (bridge) has only one possible target. This is also
  // the case where rejection sampling degenerates: a bridge below a hub has
  // r(hub) = csize−1, so rejecting t == hub would loop ~csize times.
  if (nodes.size() == 2) {
    return nodes[0] == s ? nodes[1] : nodes[0];
  }
  const auto& weights = target_weights_[c];
  size_t s_index = static_cast<size_t>(
      std::lower_bound(nodes.begin(), nodes.end(), s) - nodes.begin());
  const double r_s = weights[s_index];
  const double mass = target_mass_[c];
  if (r_s < 0.5 * mass) {
    // Rejection from the unconditional r-weighted alias table realizes
    // Pr[t | t != s] = r(t)/(mass − r(s)) exactly; with r(s) below half the
    // mass the expected number of retries is at most 2.
    for (;;) {
      NodeId t = nodes[target_alias_[c].Sample(rng)];
      if (t != s) return t;
    }
  }
  // One node holds most of the r-mass: sample by inversion over the
  // remaining members, O(|C_c|). Rare (at most one such node per call).
  double x = rng->UniformDouble() * (mass - r_s);
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i == s_index) continue;
    x -= weights[i];
    if (x <= 0.0) return nodes[i];
  }
  // Floating-point slack: return the last non-s member.
  return nodes.back() == s ? nodes[nodes.size() - 2] : nodes.back();
}

PersonalizedSpace::PersonalizedSpace(const IspIndex& isp,
                                     std::vector<NodeId> targets)
    : isp_(&isp), targets_(std::move(targets)) {
  const Graph& g = isp.graph();
  node_to_hyp_.assign(g.num_nodes(), -1);
  for (size_t i = 0; i < targets_.size(); ++i) {
    NodeId v = targets_[i];
    SAPHYRA_CHECK_MSG(v < g.num_nodes(), "target node out of range");
    SAPHYRA_CHECK_MSG(node_to_hyp_[v] == -1, "duplicate target node");
    node_to_hyp_[v] = static_cast<int32_t>(i);
  }
  // I(A): components containing at least one target.
  for (NodeId v : targets_) {
    for (uint32_t c : isp.ComponentsOf(v)) comp_ids_.push_back(c);
  }
  std::sort(comp_ids_.begin(), comp_ids_.end());
  comp_ids_.erase(std::unique(comp_ids_.begin(), comp_ids_.end()),
                  comp_ids_.end());

  double mass = 0.0;
  std::vector<double> weights;
  weights.reserve(comp_ids_.size());
  for (uint32_t c : comp_ids_) {
    weights.push_back(isp.comp_weight(c));
    mass += isp.comp_weight(c);
  }
  eta_ = isp.total_weight() > 0.0 ? mass / isp.total_weight() : 0.0;
  if (mass > 0.0) comp_alias_ = AliasTable(weights);
}

uint32_t PersonalizedSpace::SampleComponent(Rng* rng) const {
  SAPHYRA_CHECK(!comp_alias_.empty());
  return comp_ids_[comp_alias_.Sample(rng)];
}

}  // namespace saphyra
