#ifndef SAPHYRA_BICOMP_BLOCK_CUT_TREE_H_
#define SAPHYRA_BICOMP_BLOCK_CUT_TREE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bicomp/biconnected.h"
#include "graph/connectivity.h"
#include "graph/graph.h"

namespace saphyra {

/// \brief Block-cut tree with out-reach sets (§IV-A, Fig. 2 of the paper).
///
/// The tree has one vertex per biconnected component and one per cutpoint,
/// with an edge for every (component, cutpoint-in-it) pair. From a single
/// tree DP we obtain, for every node v and component C_i containing it, the
/// *out-reach* r_i(v) = |R_i(v)|: the number of nodes reachable from v
/// without entering C_i (including v itself). Non-cutpoints have
/// r_i(v) = 1; for cutpoints the value is the mass hanging off v away from
/// C_i. Out-reach drives every closed-form quantity of SaPHyRa_bc:
/// q_st (pair mass), γ (Eq. 19), η (Eq. 23) and bc_a (Eq. 21).
///
/// Disconnected graphs are supported: sums that the paper writes with `n`
/// use the size of the relevant connected component instead (pairs with no
/// connecting path carry no probability mass in D_b, so this matches Eq. 5).
class BlockCutTree {
 public:
  /// \brief Build from a graph, its biconnected decomposition, and its
  /// connected-component labeling. O(n + Σ|C_i|).
  static BlockCutTree Build(const Graph& g, const BiconnectedComponents& bcc,
                            const ComponentLabels& conn);

  /// \brief Out-reach r_i(v). `v` must be a member of component `comp`.
  uint64_t OutReach(uint32_t comp, NodeId v) const {
    if (!(*is_cutpoint_)[v]) return 1;
    auto it = cut_reach_.find(Key(comp, v));
    return it == cut_reach_.end() ? 1 : it->second;
  }

  /// \brief |T_i(v)| = (size of v's connected component) − r_i(v): the
  /// number of nodes separated from v's out-reach side by C_i.
  uint64_t HangSize(uint32_t comp, NodeId v) const {
    return conn_size_of_comp_[comp] - OutReach(comp, v);
  }

  /// \brief Size of the connected component that biconnected component
  /// `comp` lives in.
  uint64_t conn_size_of_comp(uint32_t comp) const {
    return conn_size_of_comp_[comp];
  }

  /// \brief Size of the connected component of node v.
  uint64_t conn_size_of_node(NodeId v) const {
    return conn_sizes_[conn_->component[v]];
  }

  /// \brief Re-point the internal references after the owning
  /// BiconnectedComponents / ComponentLabels structs moved (the tree stores
  /// addresses of their members). Used by the `.sgr` cache loader and by
  /// IspIndex when it adopts a deserialized decomposition.
  void Rebind(const BiconnectedComponents& bcc, const ComponentLabels& conn) {
    is_cutpoint_ = &bcc.is_cutpoint;
    conn_ = &conn;
  }

  /// \brief The cutpoint out-reach table, keyed by (comp << 32 | node)
  /// (serialization access; see MakeKey).
  const std::unordered_map<uint64_t, uint64_t>& cut_reach() const {
    return cut_reach_;
  }

  /// \brief Per-biconnected-component connected-component sizes
  /// (serialization access).
  const std::vector<uint64_t>& conn_size_of_comp_table() const {
    return conn_size_of_comp_;
  }

  /// \brief The cut_reach key of (comp, v), for (de)serialization.
  static uint64_t MakeKey(uint32_t comp, NodeId v) { return Key(comp, v); }

  /// \brief Reassemble a tree from persisted parts (deserialization). The
  /// tree DP is *not* re-run; `cut_reach` pairs come from a prior Build.
  static BlockCutTree FromParts(
      const BiconnectedComponents& bcc, const ComponentLabels& conn,
      std::vector<uint64_t> conn_size_of_comp,
      const std::vector<std::pair<uint64_t, uint64_t>>& cut_reach);

 private:
  static uint64_t Key(uint32_t comp, NodeId v) {
    return (static_cast<uint64_t>(comp) << 32) | v;
  }

  const std::vector<uint8_t>* is_cutpoint_ = nullptr;
  const ComponentLabels* conn_ = nullptr;
  std::vector<uint64_t> conn_sizes_;          // per connected component
  std::vector<uint64_t> conn_size_of_comp_;   // per biconnected component
  std::unordered_map<uint64_t, uint64_t> cut_reach_;
};

}  // namespace saphyra

#endif  // SAPHYRA_BICOMP_BLOCK_CUT_TREE_H_
