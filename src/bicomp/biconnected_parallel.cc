// Parallel biconnected-components decomposition: the ROADMAP
// "parallel preprocessing" item. A Tarjan–Vishkin style vertex labeling
// over a BFS spanning forest, run as level-synchronous sweeps on
// SharedThreadPool — no recursion, no depth-proportional stack, O(n + m)
// work. The pipeline:
//
//   1. connected components (lock-free union-find, min-id representatives)
//   2. BFS spanning forest rooted at every component's minimum-id node;
//      parent[w] = the smallest frontier neighbor (atomic fetch-min)
//   3. preorder ranges first/last per node via level-synchronous
//      subtree-size and prefix sweeps (the Euler-tour ranges of the
//      fast-BCC shape, without list ranking)
//   4. low/high = min/max preorder reachable from the subtree through any
//      incident edge, by a bottom-up level sweep
//   5. skeleton union-find over the Tarjan–Vishkin rules:
//        (i)  Union(u, w) for every non-tree edge {u, w} whose endpoints
//             are unrelated in the forest (a cross edge), and
//        (ii) Union(v, parent[v]) for every non-root v whose subtree
//             escapes the parent's preorder range
//             (low[v] < first[p] or high[v] > last[p]).
//      Two tree edges then share a biconnected component iff their child
//      endpoints share a skeleton set; a back edge joins the component of
//      its descendant endpoint, a cross edge that of either endpoint.
//   6. arc labels from the skeleton representatives, renumbered by each
//      component's smallest CSR arc index (the canonicalization contract
//      in biconnected.h), and the same derived tables the serial pass
//      builds.
//
// Determinism across thread counts falls out of three properties: the
// skeleton partition is a graph invariant (independent of the spanning
// forest), every cross-chunk write is an atomic min/add whose result is
// interleaving-independent, and per-chunk scratch output is concatenated
// in chunk order. tests/bicomp_differential_test.cc pins bitwise equality
// against the serial oracle across {1, 2, 8} threads.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "bicomp/biconnected.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace saphyra {
namespace {

constexpr EdgeIndex kNoArc = static_cast<EdgeIndex>(-1);

inline NodeId LoadNode(NodeId* p) {
  return std::atomic_ref<NodeId>(*p).load(std::memory_order_relaxed);
}

inline void StoreNode(NodeId* p, NodeId v) {
  std::atomic_ref<NodeId>(*p).store(v, std::memory_order_relaxed);
}

/// Lower `*p` to min(*p, v); returns the value observed before the update.
/// Discovery idiom: the caller that sees the initial sentinel is the unique
/// first writer.
inline NodeId FetchMinNode(NodeId* p, NodeId v) {
  std::atomic_ref<NodeId> ref(*p);
  NodeId cur = ref.load(std::memory_order_relaxed);
  while (v < cur) {
    if (ref.compare_exchange_weak(cur, v, std::memory_order_relaxed)) break;
  }
  return cur;
}

inline void FetchMinArc(EdgeIndex* p, EdgeIndex v) {
  std::atomic_ref<EdgeIndex> ref(*p);
  EdgeIndex cur = ref.load(std::memory_order_relaxed);
  while (v < cur) {
    if (ref.compare_exchange_weak(cur, v, std::memory_order_relaxed)) break;
  }
}

inline uint32_t FetchAdd32(uint32_t* p, uint32_t v) {
  return std::atomic_ref<uint32_t>(*p).fetch_add(v, std::memory_order_relaxed);
}

/// \brief Static chunking over SharedThreadPool: exactly `threads`
/// contiguous chunks per call, or one inline chunk when the range is too
/// small to pay for a queue round-trip (essential on million-level BFS
/// frontiers of size 1). Chunk boundaries depend only on (range, threads),
/// never on the pool's worker count, so per-chunk scratch concatenated in
/// chunk order is reproducible for a fixed logical thread count.
class Chunker {
 public:
  explicit Chunker(uint32_t threads)
      : pool_(&SharedThreadPool()), threads_(threads < 1 ? 1 : threads) {}

  uint32_t threads() const { return threads_; }

  /// Run fn(chunk, lo, hi) over [begin, end) split into threads() chunks.
  /// Blocks until every chunk is done (a full barrier).
  template <class Fn>
  void Chunks(size_t begin, size_t end, const Fn& fn) const {
    if (begin >= end) return;
    const size_t len = end - begin;
    if (threads_ == 1 || len < kInlineBelow) {
      fn(0, begin, end);
      return;
    }
    ThreadPool::TaskGroup group;
    const size_t base = len / threads_;
    const size_t rem = len % threads_;
    size_t lo = begin;
    for (uint32_t t = 0; t < threads_; ++t) {
      const size_t hi = lo + base + (t < rem ? 1 : 0);
      pool_->Submit(&group, [&fn, t, lo, hi] { fn(t, lo, hi); });
      lo = hi;
    }
    pool_->WaitGroup(&group);
  }

  /// Run fn(i) for every i in [begin, end), chunk-parallel.
  template <class Fn>
  void For(size_t begin, size_t end, const Fn& fn) const {
    Chunks(begin, end, [&fn](uint32_t, size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }

  /// Nodes v in [0, n) with pred(v), ascending (chunks are contiguous and
  /// ascending, so chunk-order concatenation preserves the order).
  template <class Pred>
  std::vector<NodeId> CollectNodes(NodeId n, const Pred& pred) const {
    std::vector<std::vector<NodeId>> per(threads_);
    Chunks(0, n, [&](uint32_t t, size_t lo, size_t hi) {
      std::vector<NodeId>& buf = per[t];
      for (size_t v = lo; v < hi; ++v) {
        if (pred(static_cast<NodeId>(v))) buf.push_back(static_cast<NodeId>(v));
      }
    });
    std::vector<NodeId> out;
    for (std::vector<NodeId>& buf : per) {
      out.insert(out.end(), buf.begin(), buf.end());
    }
    return out;
  }

 private:
  static constexpr size_t kInlineBelow = 2048;

  ThreadPool* pool_;
  uint32_t threads_;
};

/// Concurrent union-find with path halving. Roots always link larger id
/// under smaller, so a set's representative is its minimum member — a
/// deterministic function of the unions performed, in any order.
NodeId UfFind(std::vector<NodeId>* uf, NodeId x) {
  for (;;) {
    NodeId p = LoadNode(&(*uf)[x]);
    if (p == x) return x;
    NodeId gp = LoadNode(&(*uf)[p]);
    if (gp == p) return p;
    // Path halving: parents only ever decrease, so a racy store can only
    // re-publish a valid (possibly stale) shortcut.
    StoreNode(&(*uf)[x], gp);
    x = gp;
  }
}

void UfUnion(std::vector<NodeId>* uf, NodeId a, NodeId b) {
  for (;;) {
    a = UfFind(uf, a);
    b = UfFind(uf, b);
    if (a == b) return;
    if (a < b) std::swap(a, b);  // link the larger root under the smaller
    NodeId expected = a;
    if (std::atomic_ref<NodeId>((*uf)[a])
            .compare_exchange_strong(expected, b,
                                     std::memory_order_relaxed)) {
      return;
    }
  }
}

/// Reverse-arc map with the per-arc binary search parallelized over source
/// nodes (the serial pass uses a cursor sweep; both produce the unique
/// inverse permutation, so the results are identical).
std::vector<EdgeIndex> ReverseArcsParallel(const Graph& g, const Chunker& ex) {
  std::vector<EdgeIndex> rev(g.num_arcs());
  ex.For(0, g.num_nodes(), [&](size_t ui) {
    NodeId u = static_cast<NodeId>(ui);
    EdgeIndex base = g.offset(u);
    auto nbr = g.neighbors(u);
    for (size_t i = 0; i < nbr.size(); ++i) {
      NodeId v = nbr[i];
      auto vn = g.neighbors(v);
      auto it = std::lower_bound(vn.begin(), vn.end(), u);
      SAPHYRA_CHECK(it != vn.end() && *it == u);
      rev[base + i] = g.offset(v) + static_cast<EdgeIndex>(it - vn.begin());
    }
  });
  return rev;
}

}  // namespace

BiconnectedComponents ComputeBiconnectedComponentsParallel(
    const Graph& g, uint32_t num_threads) {
  if (num_threads == 0) {
    num_threads = static_cast<uint32_t>(SharedThreadPool().num_threads());
  }
  if (num_threads <= 1) {
    // The serial Hopcroft–Tarjan pass is the oracle; one thread means
    // exactly that code path.
    return ComputeBiconnectedComponents(g);
  }
  const NodeId n = g.num_nodes();
  const EdgeIndex arcs = g.num_arcs();
  const Chunker ex(num_threads);

  BiconnectedComponents out;
  out.arc_component.assign(arcs, kInvalidComp);
  out.is_cutpoint.assign(n, 0);
  out.node_component.assign(n, kInvalidComp);
  out.cutpoint_comp_count_.assign(n, 0);
  out.rev_arc = ReverseArcsParallel(g, ex);
  if (arcs == 0) return out;

  // --- 1. connected components over all edges ------------------------------
  std::vector<NodeId> cc(n);
  ex.For(0, n, [&](size_t v) { cc[v] = static_cast<NodeId>(v); });
  ex.For(0, n, [&](size_t ui) {
    NodeId u = static_cast<NodeId>(ui);
    for (NodeId w : g.neighbors(u)) {
      if (w > u) UfUnion(&cc, u, w);
    }
  });

  // --- 2. BFS spanning forest ----------------------------------------------
  // Roots are the minimum-id node of every component with at least one
  // edge (= the union-find representatives, by the min-root invariant).
  std::vector<NodeId> roots = ex.CollectNodes(n, [&](NodeId v) {
    return g.degree(v) > 0 && UfFind(&cc, v) == v;
  });

  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<uint8_t> visited(n, 0);
  std::vector<NodeId> order;  // BFS visit order, level by level
  order.reserve(n);
  std::vector<std::pair<size_t, size_t>> levels;  // [begin, end) into order

  std::vector<NodeId> frontier = roots;
  ex.For(0, frontier.size(), [&](size_t i) { visited[frontier[i]] = 1; });
  std::vector<std::vector<NodeId>> next_per(ex.threads());
  while (!frontier.empty()) {
    const size_t level_begin = order.size();
    order.insert(order.end(), frontier.begin(), frontier.end());
    levels.emplace_back(level_begin, order.size());
    // Discover: parent[w] accumulates the minimum frontier neighbor; the
    // writer that first lowers it from the sentinel owns the enqueue.
    // visited[] is read-only during this sweep (written only in the commit
    // step below, after the barrier).
    ex.Chunks(0, frontier.size(), [&](uint32_t t, size_t lo, size_t hi) {
      std::vector<NodeId>& buf = next_per[t];
      for (size_t i = lo; i < hi; ++i) {
        NodeId u = frontier[i];
        for (NodeId w : g.neighbors(u)) {
          if (visited[w]) continue;
          if (FetchMinNode(&parent[w], u) == kInvalidNode) buf.push_back(w);
        }
      }
    });
    frontier.clear();
    for (std::vector<NodeId>& buf : next_per) {
      frontier.insert(frontier.end(), buf.begin(), buf.end());
      buf.clear();
    }
    ex.For(0, frontier.size(), [&](size_t i) { visited[frontier[i]] = 1; });
  }
  const size_t visited_count = order.size();

  // --- 3. children lists, subtree sizes, preorder ranges -------------------
  std::vector<uint32_t> child_count(n, 0);
  ex.For(0, visited_count, [&](size_t i) {
    NodeId p = parent[order[i]];
    if (p != kInvalidNode) FetchAdd32(&child_count[p], 1);
  });
  std::vector<EdgeIndex> child_off(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    child_off[v + 1] = child_off[v] + child_count[v];
  }
  std::vector<NodeId> child(child_off[n]);
  {
    std::vector<uint32_t> cursor(n, 0);
    ex.For(0, visited_count, [&](size_t i) {
      NodeId v = order[i];
      NodeId p = parent[v];
      if (p != kInvalidNode) child[child_off[p] + FetchAdd32(&cursor[p], 1)] = v;
    });
  }
  // Sort each node's children ascending so the preorder assignment below is
  // a pure function of the forest, not of scatter interleaving.
  ex.For(0, n, [&](size_t v) {
    if (child_count[v] > 1) {
      std::sort(child.begin() + child_off[v],
                child.begin() + child_off[v] + child_count[v]);
    }
  });

  // Subtree sizes bottom-up, one level at a time (children are always one
  // level deeper, so their sizes are final when the parent's level runs).
  std::vector<uint32_t> sub(n, 0);
  for (size_t l = levels.size(); l-- > 0;) {
    ex.For(levels[l].first, levels[l].second, [&](size_t i) {
      NodeId v = order[i];
      uint32_t s = 1;
      for (EdgeIndex c = child_off[v]; c < child_off[v + 1]; ++c) {
        s += sub[child[c]];
      }
      sub[v] = s;
    });
  }

  // Preorder numbers top-down: each tree occupies a contiguous block in
  // ascending root-id order; within a node, children take consecutive
  // sub-blocks in ascending id order. first/last are exactly the DFS
  // preorder entry time and the max preorder in the subtree.
  std::vector<uint32_t> first(n, 0);
  std::vector<uint32_t> last(n, 0);
  {
    uint32_t base = 0;
    for (NodeId r : roots) {
      first[r] = base;
      base += sub[r];
    }
  }
  for (const std::pair<size_t, size_t>& level : levels) {
    ex.For(level.first, level.second, [&](size_t i) {
      NodeId v = order[i];
      const uint32_t f = first[v];
      last[v] = f + sub[v] - 1;
      uint32_t next = f + 1;
      for (EdgeIndex c = child_off[v]; c < child_off[v + 1]; ++c) {
        first[child[c]] = next;
        next += sub[child[c]];
      }
    });
  }

  // --- 4. low/high preorder ranges -----------------------------------------
  // Local extrema over *all* incident edges: the parent's preorder is never
  // below first[parent] and a child's never leaves the subtree range, so
  // including tree arcs cannot trip the escape tests of rule (ii).
  std::vector<uint32_t> low(n, 0);
  std::vector<uint32_t> high(n, 0);
  ex.For(0, visited_count, [&](size_t i) {
    NodeId v = order[i];
    uint32_t lo = first[v];
    uint32_t hi = first[v];
    for (NodeId w : g.neighbors(v)) {
      const uint32_t f = first[w];
      lo = std::min(lo, f);
      hi = std::max(hi, f);
    }
    low[v] = lo;
    high[v] = hi;
  });
  for (size_t l = levels.size(); l-- > 0;) {
    ex.For(levels[l].first, levels[l].second, [&](size_t i) {
      NodeId v = order[i];
      for (EdgeIndex c = child_off[v]; c < child_off[v + 1]; ++c) {
        low[v] = std::min(low[v], low[child[c]]);
        high[v] = std::max(high[v], high[child[c]]);
      }
    });
  }

  // --- 5. skeleton union-find (Tarjan–Vishkin rules) -----------------------
  std::vector<NodeId> skel(n);
  ex.For(0, n, [&](size_t v) { skel[v] = static_cast<NodeId>(v); });
  // Rule (ii): a tree edge (parent[v], v) is in the same component as the
  // edge above the parent iff v's subtree escapes the parent's range.
  ex.For(0, visited_count, [&](size_t i) {
    NodeId v = order[i];
    NodeId p = parent[v];
    if (p == kInvalidNode) return;
    if (low[v] < first[p] || high[v] > last[p]) UfUnion(&skel, v, p);
  });
  // Rule (i): a cross edge (endpoints unrelated in the forest) merges its
  // endpoints' skeleton sets. Back edges are subsumed by the low/high
  // ranges feeding rule (ii).
  ex.For(0, n, [&](size_t ui) {
    NodeId u = static_cast<NodeId>(ui);
    for (NodeId w : g.neighbors(u)) {
      if (w <= u) continue;  // each undirected edge once
      if (parent[w] == u || parent[u] == w) continue;  // tree edge
      const bool w_in_u = first[u] <= first[w] && first[w] <= last[u];
      const bool u_in_w = first[w] <= first[u] && first[u] <= last[w];
      if (!w_in_u && !u_in_w) UfUnion(&skel, u, w);
    }
  });
  // Snapshot representatives so the read-only labeling sweep below never
  // races with path-halving writes.
  std::vector<NodeId> rep(n);
  ex.For(0, n, [&](size_t v) {
    rep[v] = UfFind(&skel, static_cast<NodeId>(v));
  });

  // --- 6. arc labels + canonical renumbering -------------------------------
  // A tree arc belongs to the component of its child endpoint; a back edge
  // to that of its descendant endpoint; a cross edge's endpoints share a
  // set (rule i), so either works.
  std::vector<EdgeIndex> min_arc(n, kNoArc);
  ex.For(0, n, [&](size_t ui) {
    NodeId u = static_cast<NodeId>(ui);
    EdgeIndex base = g.offset(u);
    auto nbr = g.neighbors(u);
    for (size_t i = 0; i < nbr.size(); ++i) {
      NodeId w = nbr[i];
      NodeId side;
      if (parent[w] == u) {
        side = w;
      } else if (parent[u] == w) {
        side = u;
      } else if (first[u] <= first[w] && first[w] <= last[u]) {
        side = w;  // w is a descendant of u
      } else {
        side = u;  // u is a descendant of w, or the edge is a cross edge
      }
      const NodeId r = rep[side];
      const EdgeIndex e = base + static_cast<EdgeIndex>(i);
      out.arc_component[e] = r;  // provisional: the skeleton representative
      FetchMinArc(&min_arc[r], e);
    }
  });
  // Canonical ids: ascending smallest-arc order (see biconnected.h). The
  // collect is ascending by representative and the sort key (min arc) is
  // unique per component, so the mapping is deterministic.
  std::vector<NodeId> reps =
      ex.CollectNodes(n, [&](NodeId v) { return min_arc[v] != kNoArc; });
  std::sort(reps.begin(), reps.end(),
            [&](NodeId a, NodeId b) { return min_arc[a] < min_arc[b]; });
  out.num_components = static_cast<uint32_t>(reps.size());
  std::vector<uint32_t> comp_of_rep(n, kInvalidComp);
  ex.For(0, reps.size(), [&](size_t i) {
    comp_of_rep[reps[i]] = static_cast<uint32_t>(i);
  });
  ex.For(0, arcs, [&](size_t e) {
    out.arc_component[e] = comp_of_rep[out.arc_component[e]];
  });

  // --- 7. derived tables (same contents as the serial tail) ----------------
  std::vector<uint32_t> comp_size(out.num_components, 0);
  auto for_distinct_comps = [&](NodeId v, std::vector<uint32_t>* scratch,
                                const auto& fn) {
    scratch->clear();
    EdgeIndex base = g.offset(v);
    for (NodeId i = 0; i < g.degree(v); ++i) {
      scratch->push_back(out.arc_component[base + i]);
    }
    std::sort(scratch->begin(), scratch->end());
    scratch->erase(std::unique(scratch->begin(), scratch->end()),
                   scratch->end());
    for (uint32_t c : *scratch) fn(c);
  };
  ex.Chunks(0, n, [&](uint32_t, size_t lo, size_t hi) {
    std::vector<uint32_t> distinct;
    for (size_t vi = lo; vi < hi; ++vi) {
      NodeId v = static_cast<NodeId>(vi);
      for_distinct_comps(v, &distinct,
                         [&](uint32_t c) { FetchAdd32(&comp_size[c], 1); });
      if (distinct.empty()) continue;  // isolated node
      out.node_component[v] = distinct.front();
      out.cutpoint_comp_count_[v] = static_cast<uint32_t>(distinct.size());
      out.is_cutpoint[v] = distinct.size() > 1 ? 1 : 0;
    }
  });
  out.component_nodes.assign(out.num_components, {});
  ex.For(0, out.num_components, [&](size_t c) {
    out.component_nodes[c].resize(comp_size[c]);
  });
  {
    std::vector<uint32_t> cursor(out.num_components, 0);
    ex.Chunks(0, n, [&](uint32_t, size_t lo, size_t hi) {
      std::vector<uint32_t> distinct;
      for (size_t vi = lo; vi < hi; ++vi) {
        NodeId v = static_cast<NodeId>(vi);
        for_distinct_comps(v, &distinct, [&](uint32_t c) {
          out.component_nodes[c][FetchAdd32(&cursor[c], 1)] = v;
        });
      }
    });
  }
  ex.For(0, out.num_components, [&](size_t c) {
    std::sort(out.component_nodes[c].begin(), out.component_nodes[c].end());
  });
  return out;
}

}  // namespace saphyra
