#ifndef SAPHYRA_BICOMP_COMPONENT_VIEW_H_
#define SAPHYRA_BICOMP_COMPONENT_VIEW_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bicomp/biconnected.h"
#include "graph/graph.h"
#include "graph/storage.h"
#include "util/status.h"

namespace saphyra {

/// \brief Compact per-biconnected-component CSR subgraphs.
///
/// The Gen_bc sampler restricts every BFS to one biconnected component.
/// Filtering the global adjacency per arc (`arc_component[e] == c`) pays a
/// random 4-byte load plus a branch on every arc scanned — including all the
/// arcs that fail the test, which at cutpoints (a hub carrying thousands of
/// leaf bridges) can be nearly all of them. ComponentViews removes both
/// costs: each component is materialized once as its own relabeled CSR whose
/// nodes are 0..|C_i|−1 and whose adjacency holds exactly the component's
/// arcs, laid out contiguously. A component-restricted traversal then scans
/// pure adjacency with zero per-arc filtering or global-id indirection, and
/// its scratch arrays only ever touch the first |C_i| entries — dense and
/// cache-resident instead of scattered over all n global ids.
///
/// Layout: all components share four flat arrays. Component c owns the node
/// slice [node_begin(c), node_begin(c+1)) of `nodes_` (global ids, sorted
/// ascending — so local ids are order-preserving) and of `offsets_`, whose
/// entries are absolute indices into the shared `adj_` array of local ids.
/// Total size: Σ|C_i| node entries plus exactly num_arcs adjacency entries
/// (every arc belongs to exactly one component).
///
/// Local adjacency lists come out sorted by local id, mirroring the global
/// Graph invariant, and the local-id bijection preserves order; a traversal
/// over the view therefore discovers nodes in the same order as the filtered
/// traversal over the global graph it replaces.
///
/// The four arrays live in ArrayRefs: built views own them; views loaded
/// from a `.sgr` cache reference the mapping zero-copy (graph/binary_io.h).
class ComponentViews {
 public:
  ComponentViews() = default;

  /// \brief Materialize every component of `bcc`. O(m log max|C_i|).
  ComponentViews(const Graph& g, const BiconnectedComponents& bcc);

  /// \brief Number of components ℓ.
  uint32_t num_components() const {
    return static_cast<uint32_t>(node_begin_.empty() ? 0
                                                     : node_begin_.size() - 1);
  }

  /// \brief Largest component size (scratch-sizing aid).
  NodeId max_component_size() const { return max_size_; }

  /// \brief Number of nodes of component c.
  NodeId size(uint32_t c) const {
    return static_cast<NodeId>(node_begin_[c + 1] - node_begin_[c]);
  }

  /// \brief Directed arcs of component c.
  EdgeIndex num_arcs(uint32_t c) const {
    return offsets_[node_begin_[c + 1]] - offsets_[node_begin_[c]];
  }

  /// \brief Members of c as global ids, sorted ascending (local id order).
  std::span<const NodeId> nodes(uint32_t c) const {
    return {nodes_.data() + node_begin_[c], nodes_.data() + node_begin_[c + 1]};
  }

  /// \brief Local id of `global` in component c, kInvalidNode if absent.
  /// O(log |C_c|).
  NodeId ToLocal(uint32_t c, NodeId global) const;

  /// \brief Global id of local node `local` of component c.
  NodeId ToGlobal(uint32_t c, NodeId local) const {
    return nodes_[node_begin_[c] + local];
  }

  /// \brief Neighbors of local node `local` within component c, as local
  /// ids, sorted ascending.
  std::span<const NodeId> Neighbors(uint32_t c, NodeId local) const {
    const size_t o = node_begin_[c] + local;
    return {adj_.data() + offsets_[o], adj_.data() + offsets_[o + 1]};
  }

  /// \brief Degree of local node `local` within component c.
  NodeId Degree(uint32_t c, NodeId local) const {
    const size_t o = node_begin_[c] + local;
    return static_cast<NodeId>(offsets_[o + 1] - offsets_[o]);
  }

  /// \brief Hint the CSR offsets of `local` into cache (BFS lookahead).
  void PrefetchOffsets(uint32_t c, NodeId local) const {
    __builtin_prefetch(&offsets_[node_begin_[c] + local], 0, 3);
  }

  /// \brief The raw flat arrays (serialization / bulk-copy access).
  std::span<const uint64_t> raw_node_begin() const {
    return node_begin_.span();
  }
  std::span<const NodeId> raw_nodes() const { return nodes_.span(); }
  std::span<const EdgeIndex> raw_offsets() const { return offsets_.span(); }
  std::span<const NodeId> raw_adj() const { return adj_.span(); }

  /// \brief Assemble views directly from the four flat arrays
  /// (deserialization). Only boundary invariants are checked — the `.sgr`
  /// reader owns the trust model (see DESIGN.md).
  static Status FromParts(ArrayRef<uint64_t> node_begin,
                          ArrayRef<NodeId> nodes, ArrayRef<EdgeIndex> offsets,
                          ArrayRef<NodeId> adj, NodeId max_size,
                          ComponentViews* out);

 private:
  ArrayRef<uint64_t> node_begin_;  // size ℓ+1, into nodes_/offsets_
  ArrayRef<NodeId> nodes_;    // size Σ|C_i|, global ids per component
  ArrayRef<EdgeIndex> offsets_;  // size Σ|C_i|+1, absolute into adj_
  ArrayRef<NodeId> adj_;      // size num_arcs, local ids
  NodeId max_size_ = 0;
};

}  // namespace saphyra

#endif  // SAPHYRA_BICOMP_COMPONENT_VIEW_H_
