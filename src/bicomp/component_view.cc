#include "bicomp/component_view.h"

#include <algorithm>

#include "util/logging.h"

namespace saphyra {

namespace {

/// Local id of `v` in the sorted member list `members`. The caller
/// guarantees membership (every arc endpoint belongs to the arc's
/// component).
NodeId LocalIndex(std::span<const NodeId> members, NodeId v) {
  auto it = std::lower_bound(members.begin(), members.end(), v);
  SAPHYRA_CHECK(it != members.end() && *it == v);
  return static_cast<NodeId>(it - members.begin());
}

}  // namespace

ComponentViews::ComponentViews(const Graph& g,
                               const BiconnectedComponents& bcc) {
  const uint32_t num_comps = bcc.num_components;
  std::vector<uint64_t> node_begin(num_comps + 1, 0);
  for (uint32_t c = 0; c < num_comps; ++c) {
    const size_t sz = bcc.component_nodes[c].size();
    node_begin[c + 1] = node_begin[c] + sz;
    max_size_ = std::max(max_size_, static_cast<NodeId>(sz));
  }
  const size_t total_nodes = node_begin[num_comps];
  std::vector<NodeId> nodes;
  nodes.reserve(total_nodes);
  for (uint32_t c = 0; c < num_comps; ++c) {
    nodes.insert(nodes.end(), bcc.component_nodes[c].begin(),
                 bcc.component_nodes[c].end());
  }
  auto members_of = [&](uint32_t c) {
    return std::span<const NodeId>(nodes.data() + node_begin[c],
                                   nodes.data() + node_begin[c + 1]);
  };

  // Pass 1: per-local-node degrees, accumulated into offsets[slot+1] so the
  // prefix sum below turns them into absolute adjacency offsets.
  std::vector<EdgeIndex> offsets(total_nodes + 1, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const EdgeIndex base = g.offset(u);
    const NodeId deg = g.degree(u);
    uint32_t last_c = kInvalidComp;
    size_t last_slot = 0;
    for (NodeId i = 0; i < deg; ++i) {
      const uint32_t c = bcc.arc_component[base + i];
      SAPHYRA_CHECK(c != kInvalidComp);
      if (c != last_c) {
        last_c = c;
        last_slot = node_begin[c] + LocalIndex(members_of(c), u);
      }
      ++offsets[last_slot + 1];
    }
  }
  for (size_t i = 1; i <= total_nodes; ++i) offsets[i] += offsets[i - 1];
  SAPHYRA_CHECK(offsets[total_nodes] == g.num_arcs());

  // Pass 2: scatter each arc into its component slot. Scanning u ascending
  // and its (sorted) global adjacency in order writes each local list sorted
  // by global — hence by local — neighbor id.
  std::vector<NodeId> adj(g.num_arcs(), 0);
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const EdgeIndex base = g.offset(u);
    const auto nbr = g.neighbors(u);
    uint32_t last_c = kInvalidComp;
    size_t last_slot = 0;
    for (size_t i = 0; i < nbr.size(); ++i) {
      const uint32_t c = bcc.arc_component[base + i];
      if (c != last_c) {
        last_c = c;
        last_slot = node_begin[c] + LocalIndex(members_of(c), u);
      }
      adj[cursor[last_slot]++] = LocalIndex(members_of(c), nbr[i]);
    }
  }

  node_begin_ = std::move(node_begin);
  nodes_ = std::move(nodes);
  offsets_ = std::move(offsets);
  adj_ = std::move(adj);
}

Status ComponentViews::FromParts(ArrayRef<uint64_t> node_begin,
                                 ArrayRef<NodeId> nodes,
                                 ArrayRef<EdgeIndex> offsets,
                                 ArrayRef<NodeId> adj, NodeId max_size,
                                 ComponentViews* out) {
  if (node_begin.empty() || offsets.empty()) {
    return Status::InvalidArgument("component view arrays must be non-empty");
  }
  const uint64_t total_nodes = node_begin[node_begin.size() - 1];
  if (nodes.size() != total_nodes || offsets.size() != total_nodes + 1) {
    return Status::InvalidArgument(
        "component view node arrays do not line up");
  }
  // Interior node_begin entries bound every nodes(c)/Neighbors(c, ·) span;
  // a non-monotonic (corrupt) entry would hand out spans with end < begin
  // or past the backing storage. O(ℓ) — negligible next to the load.
  if (node_begin[0] != 0) {
    return Status::InvalidArgument("component view node_begin must start 0");
  }
  for (size_t i = 1; i < node_begin.size(); ++i) {
    if (node_begin[i - 1] > node_begin[i]) {
      return Status::InvalidArgument(
          "component view node_begin is not monotonic");
    }
  }
  if (offsets[0] != 0 || offsets[total_nodes] != adj.size()) {
    return Status::InvalidArgument(
        "component view offsets do not bound the adjacency");
  }
  out->node_begin_ = std::move(node_begin);
  out->nodes_ = std::move(nodes);
  out->offsets_ = std::move(offsets);
  out->adj_ = std::move(adj);
  out->max_size_ = max_size;
  return Status::OK();
}

NodeId ComponentViews::ToLocal(uint32_t c, NodeId global) const {
  const auto members = nodes(c);
  auto it = std::lower_bound(members.begin(), members.end(), global);
  if (it == members.end() || *it != global) return kInvalidNode;
  return static_cast<NodeId>(it - members.begin());
}

}  // namespace saphyra
