#include "bicomp/component_view.h"

#include <algorithm>

#include "util/logging.h"

namespace saphyra {

namespace {

/// Local id of `v` in the sorted member list `members`. The caller
/// guarantees membership (every arc endpoint belongs to the arc's
/// component).
NodeId LocalIndex(std::span<const NodeId> members, NodeId v) {
  auto it = std::lower_bound(members.begin(), members.end(), v);
  SAPHYRA_CHECK(it != members.end() && *it == v);
  return static_cast<NodeId>(it - members.begin());
}

}  // namespace

ComponentViews::ComponentViews(const Graph& g,
                               const BiconnectedComponents& bcc) {
  const uint32_t num_comps = bcc.num_components;
  node_begin_.assign(num_comps + 1, 0);
  for (uint32_t c = 0; c < num_comps; ++c) {
    const size_t sz = bcc.component_nodes[c].size();
    node_begin_[c + 1] = node_begin_[c] + sz;
    max_size_ = std::max(max_size_, static_cast<NodeId>(sz));
  }
  const size_t total_nodes = node_begin_[num_comps];
  nodes_.reserve(total_nodes);
  for (uint32_t c = 0; c < num_comps; ++c) {
    nodes_.insert(nodes_.end(), bcc.component_nodes[c].begin(),
                  bcc.component_nodes[c].end());
  }

  // Pass 1: per-local-node degrees, accumulated into offsets_[slot+1] so the
  // prefix sum below turns them into absolute adjacency offsets.
  offsets_.assign(total_nodes + 1, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const EdgeIndex base = g.offset(u);
    const NodeId deg = g.degree(u);
    uint32_t last_c = kInvalidComp;
    size_t last_slot = 0;
    for (NodeId i = 0; i < deg; ++i) {
      const uint32_t c = bcc.arc_component[base + i];
      SAPHYRA_CHECK(c != kInvalidComp);
      if (c != last_c) {
        last_c = c;
        last_slot = node_begin_[c] + LocalIndex(nodes(c), u);
      }
      ++offsets_[last_slot + 1];
    }
  }
  for (size_t i = 1; i <= total_nodes; ++i) offsets_[i] += offsets_[i - 1];
  SAPHYRA_CHECK(offsets_[total_nodes] == g.num_arcs());

  // Pass 2: scatter each arc into its component slot. Scanning u ascending
  // and its (sorted) global adjacency in order writes each local list sorted
  // by global — hence by local — neighbor id.
  adj_.assign(g.num_arcs(), 0);
  std::vector<EdgeIndex> cursor(offsets_.begin(), offsets_.end() - 1);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const EdgeIndex base = g.offset(u);
    const auto nbr = g.neighbors(u);
    uint32_t last_c = kInvalidComp;
    size_t last_slot = 0;
    for (size_t i = 0; i < nbr.size(); ++i) {
      const uint32_t c = bcc.arc_component[base + i];
      if (c != last_c) {
        last_c = c;
        last_slot = node_begin_[c] + LocalIndex(nodes(c), u);
      }
      adj_[cursor[last_slot]++] = LocalIndex(nodes(c), nbr[i]);
    }
  }
}

NodeId ComponentViews::ToLocal(uint32_t c, NodeId global) const {
  const auto members = nodes(c);
  auto it = std::lower_bound(members.begin(), members.end(), global);
  if (it == members.end() || *it != global) return kInvalidNode;
  return static_cast<NodeId>(it - members.begin());
}

}  // namespace saphyra
