#include "bicomp/incremental.h"

#include <algorithm>
#include <deque>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace saphyra {
namespace {

/// Absolute CSR arc index of (u -> v) in `g`; the edge must exist.
EdgeIndex ArcIndexOf(const Graph& g, NodeId u, NodeId v) {
  const auto nbr = g.neighbors(u);
  auto it = std::lower_bound(nbr.begin(), nbr.end(), v);
  SAPHYRA_CHECK(it != nbr.end() && *it == v);
  return g.offset(u) + static_cast<EdgeIndex>(it - nbr.begin());
}

/// Blocks on the block-cut-tree path between u and v in the old graph,
/// found by BFS over the block/cutpoint incidence forest (the path is
/// unique — the incidence graph is a forest — so the BFS order cannot
/// change the result). Returns false when u and v sit in different
/// connected components (or either is isolated): the inserted edge is a
/// bridge block of its own and no old block changes.
bool BlockCutPath(const Graph& g, const BiconnectedComponents& bcc,
                  NodeId u, NodeId v, std::vector<uint32_t>* path) {
  path->clear();
  if (g.degree(u) == 0 || g.degree(v) == 0) return false;
  // Per-cutpoint incident-block lists (non-cutpoints have exactly
  // node_component); built once per repair, O(Σ|C_i|).
  std::vector<std::vector<uint32_t>> cut_blocks(g.num_nodes());
  for (uint32_t c = 0; c < bcc.num_components; ++c) {
    for (NodeId w : bcc.component_nodes[c]) {
      if (bcc.is_cutpoint[w]) cut_blocks[w].push_back(c);
    }
  }
  auto blocks_of = [&](NodeId x) -> std::vector<uint32_t> {
    if (bcc.is_cutpoint[x]) return cut_blocks[x];
    return {bcc.node_component[x]};
  };
  auto contains_v = [&](uint32_t c) {
    if (!bcc.is_cutpoint[v]) return bcc.node_component[v] == c;
    const auto& bs = cut_blocks[v];
    return std::find(bs.begin(), bs.end(), c) != bs.end();
  };
  constexpr uint32_t kRoot = kInvalidComp;
  std::vector<uint32_t> parent(bcc.num_components, kInvalidComp);
  std::vector<uint8_t> visited(bcc.num_components, 0);
  std::deque<uint32_t> queue;
  uint32_t goal = kInvalidComp;
  for (uint32_t c : blocks_of(u)) {
    visited[c] = 1;
    parent[c] = kRoot;
    if (contains_v(c)) {
      goal = c;  // u and v share a block (kRoot parent ends the walk)
      break;
    }
    queue.push_back(c);
  }
  while (goal == kInvalidComp && !queue.empty()) {
    const uint32_t c = queue.front();
    queue.pop_front();
    for (NodeId w : bcc.component_nodes[c]) {
      if (!bcc.is_cutpoint[w]) continue;
      for (uint32_t c2 : cut_blocks[w]) {
        if (visited[c2]) continue;
        visited[c2] = 1;
        parent[c2] = c;
        if (contains_v(c2)) {
          goal = c2;
          break;
        }
        queue.push_back(c2);
      }
      if (goal != kInvalidComp) break;
    }
  }
  if (goal == kInvalidComp) return false;  // different components
  for (uint32_t c = goal; c != kRoot; c = parent[c]) path->push_back(c);
  return true;
}

}  // namespace

BiconnectedComponents RepairBiconnectedComponents(
    const Graph& old_graph, const BiconnectedComponents& old_bcc,
    const Graph& new_graph, const EdgeMutation& mut,
    const IncrementalBicompOptions& opts, IncrementalBicompStats* stats) {
  const NodeId n = new_graph.num_nodes();
  SAPHYRA_CHECK(old_graph.num_nodes() == n);
  const bool insert = mut.kind == EdgeMutationKind::kInsert;
  SAPHYRA_CHECK(new_graph.num_arcs() ==
                old_graph.num_arcs() + (insert ? 2 : -2));
  IncrementalBicompStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = IncrementalBicompStats();

  // 1. Transfer the old per-arc labels onto the new CSR. The two graphs
  // differ by one slot in u's list and one in v's list, so the label
  // array is the old one with two positions inserted (as kInvalidComp,
  // marking the new arcs dirty) or erased.
  std::vector<uint32_t> labels(old_bcc.arc_component.begin(),
                               old_bcc.arc_component.end());
  std::vector<uint32_t> dirty;  // old block labels to recompute
  if (insert) {
    EdgeIndex p1 = ArcIndexOf(new_graph, mut.u, mut.v);
    EdgeIndex p2 = ArcIndexOf(new_graph, mut.v, mut.u);
    if (p1 > p2) std::swap(p1, p2);
    labels.insert(labels.begin() + p1, kInvalidComp);
    labels.insert(labels.begin() + p2, kInvalidComp);
    BlockCutPath(old_graph, old_bcc, mut.u, mut.v, &dirty);
  } else {
    EdgeIndex p1 = ArcIndexOf(old_graph, mut.u, mut.v);
    EdgeIndex p2 = ArcIndexOf(old_graph, mut.v, mut.u);
    dirty.push_back(old_bcc.arc_component[p1]);
    if (p1 > p2) std::swap(p1, p2);
    labels.erase(labels.begin() + p2);
    labels.erase(labels.begin() + p1);
  }
  stats->dirty_blocks = static_cast<uint32_t>(dirty.size());

  // 2. Measure the dirty region (old dirty-block arcs that survive, plus
  // the inserted arcs) and route: past the budget a full pass is cheaper,
  // and the canonicalization contract makes it emit the same bytes.
  std::vector<uint8_t> is_dirty(old_bcc.num_components, 0);
  for (uint32_t c : dirty) is_dirty[c] = 1;
  uint64_t dirty_arcs = 0;
  for (uint32_t c : labels) {
    if (c == kInvalidComp || is_dirty[c]) ++dirty_arcs;
  }
  stats->dirty_arcs = dirty_arcs;
  if (static_cast<double>(dirty_arcs) >
      opts.max_dirty_fraction * static_cast<double>(new_graph.num_arcs())) {
    stats->fell_back = true;
    return ComputeBiconnectedComponentsParallel(new_graph,
                                                opts.fallback_threads);
  }

  uint32_t label_space = old_bcc.num_components;
  if (dirty_arcs != 0) {
    // 3. Recompute the decomposition of the dirty edge set on a compact
    // subgraph. Local ids are order-preserving (sorted dirty vertex
    // list), so sub adjacency order matches the global CSR order and the
    // graft below is a per-vertex two-pointer walk.
    std::vector<NodeId> dirty_nodes;
    for (NodeId x = 0; x < n; ++x) {
      const EdgeIndex base = new_graph.offset(x);
      const NodeId deg = new_graph.degree(x);
      for (NodeId i = 0; i < deg; ++i) {
        const uint32_t c = labels[base + i];
        if (c == kInvalidComp || is_dirty[c]) {
          dirty_nodes.push_back(x);
          break;
        }
      }
    }
    std::vector<NodeId> local_id(n, kInvalidNode);
    for (size_t i = 0; i < dirty_nodes.size(); ++i) {
      local_id[dirty_nodes[i]] = static_cast<NodeId>(i);
    }
    GraphBuilder builder;
    for (NodeId x : dirty_nodes) {
      const EdgeIndex base = new_graph.offset(x);
      const auto nbr = new_graph.neighbors(x);
      for (size_t i = 0; i < nbr.size(); ++i) {
        const uint32_t c = labels[base + i];
        if ((c == kInvalidComp || is_dirty[c]) && x < nbr[i]) {
          builder.AddEdge(local_id[x], local_id[nbr[i]]);
        }
      }
    }
    Graph sub;
    Status st = builder.Build(static_cast<NodeId>(dirty_nodes.size()), &sub);
    SAPHYRA_CHECK_MSG(st.ok(), st.message());
    const BiconnectedComponents sub_bcc = ComputeBiconnectedComponents(sub);
    // Graft the sub-labels back, offset past the old label space so clean
    // and recomputed labels never collide before the canonical renumber.
    for (NodeId lx = 0; lx < sub.num_nodes(); ++lx) {
      const NodeId gx = dirty_nodes[lx];
      const auto sub_nbr = sub.neighbors(lx);
      const auto new_nbr = new_graph.neighbors(gx);
      const EdgeIndex gbase = new_graph.offset(gx);
      size_t gi = 0;
      for (size_t si = 0; si < sub_nbr.size(); ++si) {
        const NodeId gy = dirty_nodes[sub_nbr[si]];
        while (new_nbr[gi] != gy) ++gi;
        labels[gbase + gi] =
            label_space + sub_bcc.arc_component[sub.offset(lx) + si];
        ++gi;
      }
    }
    label_space += sub_bcc.num_components;
  }
  // Inserts always land here with dirty_arcs >= 2 (the new arcs carry
  // kInvalidComp): a bridge insert recomputes just the one-edge subgraph.
  // Deleting a bridge leaves dirty_arcs == 0 with no new labels: its old
  // label simply disappears and the renumber closes the gap.

  BiconnectedComponents out;
  out.arc_component = std::move(labels);
  out.rev_arc = ComputeReverseArcs(new_graph);
  FinalizeBicompFields(new_graph, label_space, /*derive_cutpoints=*/true,
                       &out);
  return out;
}

}  // namespace saphyra
