#include "bicomp/biconnected.h"

#include <algorithm>
#include <string>

#include "util/logging.h"

namespace saphyra {

std::vector<EdgeIndex> ComputeReverseArcs(const Graph& g) {
  // Counting sweep instead of a per-arc binary search: scanning sources in
  // ascending order visits each node's in-neighbors in ascending order too
  // (adjacency lists are sorted and deduplicated), so the next free slot in
  // u's list is exactly where the current source sits in it.
  std::vector<EdgeIndex> rev(g.num_arcs());
  std::vector<NodeId> cursor(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EdgeIndex base = g.offset(v);
    auto nbr = g.neighbors(v);
    for (size_t i = 0; i < nbr.size(); ++i) {
      NodeId u = nbr[i];
      rev[g.offset(u) + cursor[u]++] = base + static_cast<EdgeIndex>(i);
    }
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    // Every arc (u, v) must have been matched by the reverse arc (v, u);
    // anything else means the adjacency structure is not symmetric.
    SAPHYRA_CHECK(cursor[u] == g.degree(u));
  }
  return rev;
}

namespace {

/// Explicit DFS frame for the iterative Hopcroft–Tarjan algorithm.
struct Frame {
  NodeId v;
  EdgeIndex arc;      // next arc of v to examine (absolute CSR index)
  EdgeIndex arc_end;  // one past v's last arc
  EdgeIndex parent_arc;  // arc (parent -> v) that entered v, or kNone
};

constexpr EdgeIndex kNoArc = static_cast<EdgeIndex>(-1);

}  // namespace

BiconnectedComponents ComputeBiconnectedComponents(const Graph& g) {
  BiconnectedComponents out;
  // Unlimited depth cannot fail.
  Status st = ComputeBiconnectedComponentsBounded(g, 0, &out);
  SAPHYRA_CHECK(st.ok());
  return out;
}

Status ComputeBiconnectedComponentsBounded(const Graph& g, uint64_t max_depth,
                                           BiconnectedComponents* result) {
  const NodeId n = g.num_nodes();
  BiconnectedComponents& out = *result;
  out = BiconnectedComponents();
  out.arc_component.assign(g.num_arcs(), kInvalidComp);
  out.is_cutpoint.assign(n, 0);
  out.node_component.assign(n, kInvalidComp);
  out.cutpoint_comp_count_.assign(n, 0);
  out.rev_arc = ComputeReverseArcs(g);

  std::vector<uint32_t> disc(n, 0);  // 0 = unvisited; discovery times from 1
  std::vector<uint32_t> low(n, 0);
  std::vector<EdgeIndex> edge_stack;  // arcs (u->v) of the current subtree
  std::vector<Frame> stack;
  uint32_t timer = 0;

  auto pop_component = [&](EdgeIndex until_arc) {
    // Pop arcs up to and including `until_arc`; they form one component.
    uint32_t comp = out.num_components++;
    for (;;) {
      SAPHYRA_CHECK(!edge_stack.empty());
      EdgeIndex e = edge_stack.back();
      edge_stack.pop_back();
      out.arc_component[e] = comp;
      out.arc_component[out.rev_arc[e]] = comp;
      if (e == until_arc) break;
    }
  };

  for (NodeId root = 0; root < n; ++root) {
    if (disc[root] != 0 || g.degree(root) == 0) continue;
    disc[root] = low[root] = ++timer;
    stack.push_back(
        {root, g.offset(root), g.offset(root) + g.degree(root), kNoArc});
    uint32_t root_children = 0;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.arc < f.arc_end) {
        EdgeIndex e = f.arc++;
        NodeId w = g.neighbors(f.v)[e - g.offset(f.v)];
        if (f.parent_arc != kNoArc && out.rev_arc[e] == f.parent_arc) {
          continue;  // the tree edge back to the parent
        }
        if (disc[w] == 0) {
          // Tree edge.
          if (max_depth != 0 && stack.size() >= max_depth) {
            return Status::FailedPrecondition(
                "graph too deep for recursive decomposition (DFS depth > " +
                std::to_string(max_depth) +
                "); use the parallel-BCC pass "
                "(ComputeBiconnectedComponentsParallel)");
          }
          disc[w] = low[w] = ++timer;
          edge_stack.push_back(e);
          if (f.v == root) ++root_children;
          stack.push_back({w, g.offset(w), g.offset(w) + g.degree(w), e});
        } else if (disc[w] < disc[f.v]) {
          // Back edge to an ancestor.
          edge_stack.push_back(e);
          low[f.v] = std::min(low[f.v], disc[w]);
        }
      } else {
        // f.v is fully explored; fold into the parent.
        Frame finished = f;
        stack.pop_back();
        if (finished.parent_arc == kNoArc) continue;  // root done
        NodeId parent = stack.back().v;
        low[parent] = std::min(low[parent], low[finished.v]);
        if (low[finished.v] >= disc[parent]) {
          // `parent` separates the subtree of finished.v: close a component.
          if (parent != root || root_children >= 2) {
            out.is_cutpoint[parent] = 1;
          }
          pop_component(finished.parent_arc);
        }
      }
    }
    SAPHYRA_CHECK(edge_stack.empty());
    // Root articulation rule: handled above via root_children (the root is a
    // cutpoint iff it has >= 2 DFS children).
    if (root_children >= 2) out.is_cutpoint[root] = 1;
  }

  // Canonical numbering + derived node fields, shared with the parallel
  // and incremental passes: components ordered by their smallest CSR arc
  // index rather than DFS pop order, making the labeling a pure function
  // of the graph. This is what keeps `.sgr` decomposition sections
  // bitwise identical across --bicomp-threads settings and across
  // incremental repairs.
  const uint32_t dfs_components = out.num_components;
  FinalizeBicompFields(g, dfs_components, /*derive_cutpoints=*/false, &out);
  SAPHYRA_CHECK(out.num_components == dfs_components);
  return Status::OK();
}

void FinalizeBicompFields(const Graph& g, uint32_t label_space,
                          bool derive_cutpoints,
                          BiconnectedComponents* result) {
  BiconnectedComponents& out = *result;
  const NodeId n = g.num_nodes();
  {
    std::vector<uint32_t> renumber(label_space, kInvalidComp);
    uint32_t next = 0;
    for (EdgeIndex e = 0; e < g.num_arcs(); ++e) {
      uint32_t& id = renumber[out.arc_component[e]];
      if (id == kInvalidComp) id = next++;
    }
    for (uint32_t& c : out.arc_component) c = renumber[c];
    out.num_components = next;
  }

  // Collect member nodes per component from the arc labels.
  out.component_nodes.assign(out.num_components, {});
  for (NodeId u = 0; u < n; ++u) {
    uint32_t prev = kInvalidComp;
    EdgeIndex base = g.offset(u);
    for (NodeId i = 0; i < g.degree(u); ++i) {
      uint32_t c = out.arc_component[base + i];
      SAPHYRA_CHECK(c != kInvalidComp);
      if (c != prev) {  // adjacency runs often share a component; cheap skip
        out.component_nodes[c].push_back(u);
        prev = c;
      }
    }
  }
  for (auto& nodes : out.component_nodes) {
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  }
  // node_component + cutpoint multiplicities.
  out.node_component.assign(n, kInvalidComp);
  out.cutpoint_comp_count_.assign(n, 0);
  for (uint32_t c = 0; c < out.num_components; ++c) {
    for (NodeId v : out.component_nodes[c]) {
      if (out.node_component[v] == kInvalidComp) out.node_component[v] = c;
      ++out.cutpoint_comp_count_[v];
    }
  }
  if (derive_cutpoints) {
    out.is_cutpoint.assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (out.cutpoint_comp_count_[v] > 1) out.is_cutpoint[v] = 1;
    }
  } else {
    for (NodeId v = 0; v < n; ++v) {
      // Consistency: multiplicity > 1 iff flagged as cutpoint.
      SAPHYRA_CHECK((out.cutpoint_comp_count_[v] > 1) ==
                    (out.is_cutpoint[v] != 0));
    }
  }
}

}  // namespace saphyra
