#ifndef SAPHYRA_STATS_DELTA_ALLOCATION_H_
#define SAPHYRA_STATS_DELTA_ALLOCATION_H_

#include <cstdint>
#include <vector>

namespace saphyra {

/// \brief Variance-aware allocation of per-hypothesis failure probabilities
/// (Eq. 13 of the paper and the surrounding text of §III-C).
///
/// Algorithm 1 stops once every hypothesis i satisfies
/// ε(N, δ_i, Var_i) ≤ ε′. The union bound over both tail sides and all
/// doubling rounds needs Σ_i 2δ_i = δ / ⌈log₂(Nmax/N0)⌉. Spreading δ
/// uniformly wastes budget on low-variance hypotheses (they would meet ε′
/// with far smaller δ_i); instead, a pilot sample estimates each variance,
/// each hypothesis gets the minimal δ_i it *needs* to meet ε′ at a
/// projected sample size (binary search on the empirical Bernstein bound),
/// and the vector is rescaled to exhaust the budget — so high-variance
/// hypotheses receive proportionally larger shares.
///
/// `pilot_variances` – per-hypothesis sample variances from the pilot run.
/// `epsilon_prime`   – target per-hypothesis accuracy ε′.
/// `delta_budget`    – Σ_i 2δ_i must equal this (δ / #rounds).
/// `n0`, `n_max`     – initial and maximal sample sizes of the main loop.
///
/// Returns k = pilot_variances.size() strictly positive δ_i.
std::vector<double> AllocateDeltas(const std::vector<double>& pilot_variances,
                                   double epsilon_prime, double delta_budget,
                                   uint64_t n0, uint64_t n_max);

}  // namespace saphyra

#endif  // SAPHYRA_STATS_DELTA_ALLOCATION_H_
