#ifndef SAPHYRA_STATS_VC_H_
#define SAPHYRA_STATS_VC_H_

#include <cstdint>

namespace saphyra {

/// Constant c of Lemma 4 ("approximately 0.5" per the paper).
constexpr double kVcSampleConstant = 0.5;

/// \brief Sample-complexity bound from VC dimension (Lemma 4 /
/// Shalev-Shwartz & Ben-David Thm 6.8): N = c/ε² (VC + ln 1/δ) samples give
/// an (ε, δ)-estimation of all expected risks simultaneously.
uint64_t VcSampleBound(double epsilon, double delta, double vc_dimension,
                       double c = kVcSampleConstant);

/// \brief πmax-based VC bound (Lemma 5): if no sample is hit by more than
/// `pi_max` hypotheses, VC(H) ≤ ⌊log₂ πmax⌋ + 1.
///
/// Returns 1 for pi_max ≤ 1 (a chain of singletons still shatters a point).
double PiMaxVcBound(uint64_t pi_max);

}  // namespace saphyra

#endif  // SAPHYRA_STATS_VC_H_
