#include "stats/empirical_bernstein.h"

#include <cmath>

#include "util/logging.h"

namespace saphyra {

double EmpiricalBernsteinEpsilon(uint64_t n, double delta0,
                                 double sample_variance) {
  SAPHYRA_CHECK(n >= 2);
  SAPHYRA_CHECK(delta0 > 0.0 && delta0 < 1.0);
  SAPHYRA_CHECK(sample_variance >= 0.0);
  const double log_term = std::log(2.0 / delta0);
  const double nn = static_cast<double>(n);
  return std::sqrt(2.0 * sample_variance * log_term / nn) +
         7.0 * log_term / (3.0 * (nn - 1.0));
}

double BernoulliSampleVariance(uint64_t ones, uint64_t n) {
  SAPHYRA_CHECK(n >= 2);
  SAPHYRA_CHECK(ones <= n);
  const double nn = static_cast<double>(n);
  return static_cast<double>(ones) * static_cast<double>(n - ones) /
         (nn * (nn - 1.0));
}

double SolveDeltaForEpsilon(uint64_t n, double sample_variance,
                            double target_epsilon) {
  SAPHYRA_CHECK(n >= 2);
  SAPHYRA_CHECK(target_epsilon > 0.0);
  // The bound is monotone *decreasing* in δ0 (ln(2/δ0) shrinks), so the
  // easiest point is the cap δ0 = 0.5. Below the threshold δ* the bound
  // exceeds the target; we return δ* — the minimal failure probability the
  // hypothesis needs to meet target_epsilon at this sample size.
  constexpr double kCap = 0.5;
  if (EmpiricalBernsteinEpsilon(n, kCap, sample_variance) > target_epsilon) {
    return 0.0;  // infeasible at any allowed δ0
  }
  double lo = 1e-300;
  if (EmpiricalBernsteinEpsilon(n, lo, sample_variance) <= target_epsilon) {
    return lo;  // feasible even with a vanishing failure probability
  }
  // Invariant: lo infeasible, hi feasible. Bisect on log δ0.
  double log_lo = std::log(lo), log_hi = std::log(kCap);
  for (int iter = 0; iter < 100; ++iter) {
    double mid = 0.5 * (log_lo + log_hi);
    double eps = EmpiricalBernsteinEpsilon(n, std::exp(mid), sample_variance);
    if (eps <= target_epsilon) {
      log_hi = mid;
    } else {
      log_lo = mid;
    }
  }
  return std::exp(log_hi);
}

}  // namespace saphyra
