#include "stats/delta_allocation.h"

#include <algorithm>

#include "stats/empirical_bernstein.h"
#include "util/logging.h"

namespace saphyra {

std::vector<double> AllocateDeltas(const std::vector<double>& pilot_variances,
                                   double epsilon_prime, double delta_budget,
                                   uint64_t n0, uint64_t n_max) {
  SAPHYRA_CHECK(delta_budget > 0.0);
  SAPHYRA_CHECK(n0 >= 2);
  const size_t k = pilot_variances.size();
  std::vector<double> deltas(k, 0.0);
  if (k == 0) return deltas;

  // Find a projected sample size N* at which every hypothesis can meet ε′
  // with some feasible δ_i; start at N0 and double (mirroring the main
  // loop's schedule) up to Nmax.
  uint64_t n_star = n0;
  std::vector<double> need(k, 0.0);
  for (;;) {
    bool all_feasible = true;
    for (size_t i = 0; i < k; ++i) {
      need[i] = SolveDeltaForEpsilon(n_star, pilot_variances[i],
                                     epsilon_prime);
      if (need[i] <= 0.0) all_feasible = false;
    }
    if (all_feasible || n_star >= n_max) break;
    n_star = std::min(n_star * 2, n_max);
  }
  // Any still-infeasible hypothesis (variance too high even at Nmax) gets
  // the smallest positive need so the rescale below still covers it; the
  // VC cap at Nmax guarantees its accuracy regardless (Lemma 4).
  double min_positive = 1.0;
  for (double d : need) {
    if (d > 0.0) min_positive = std::min(min_positive, d);
  }
  for (double& d : need) {
    if (d <= 0.0) d = min_positive * 1e-3;
  }
  // Rescale so Σ 2δ_i = delta_budget (Eq. 13).
  double total = 0.0;
  for (double d : need) total += 2.0 * d;
  double scale = delta_budget / total;
  for (size_t i = 0; i < k; ++i) {
    deltas[i] = need[i] * scale;
    SAPHYRA_CHECK(deltas[i] > 0.0);
  }
  return deltas;
}

}  // namespace saphyra
