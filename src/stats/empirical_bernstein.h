#ifndef SAPHYRA_STATS_EMPIRICAL_BERNSTEIN_H_
#define SAPHYRA_STATS_EMPIRICAL_BERNSTEIN_H_

#include <cstdint>

namespace saphyra {

/// \brief Empirical Bernstein deviation bound (Lemma 3 of the paper,
/// Maurer & Pontil Theorem 4).
///
/// For N i.i.d. samples in [0,1] with sample variance `sample_variance`
/// (the unbiased U-statistic), with probability at least 1 − δ0:
///   μ − mean ≤ sqrt(2·Var·ln(2/δ0)/N) + 7·ln(2/δ0)/(3(N−1)).
/// Two-sided use costs a factor 2 in δ0 (union bound over ±z).
///
/// Requires N ≥ 2 and 0 < δ0 < 1.
double EmpiricalBernsteinEpsilon(uint64_t n, double delta0,
                                 double sample_variance);

/// \brief Unbiased sample variance of a Bernoulli 0/1 sample with
/// `ones` successes among `n` draws:  ones·(n−ones) / (n(n−1)).
///
/// This is exactly the U-statistic Var(z) of Lemma 3 specialized to 0/1
/// losses, which is all SaPHyRa_bc ever needs (0-1 loss, Eq. 27).
double BernoulliSampleVariance(uint64_t ones, uint64_t n);

/// \brief Invert EmpiricalBernsteinEpsilon in δ0: the bound decreases as δ0
/// grows, so there is a minimal δ* ∈ (0, 0.5] at which the bound first
/// reaches target_epsilon. Returns that δ* (the failure probability the
/// hypothesis *needs*), or 0 if even δ0 = 0.5 misses the target.
///
/// Used by the δ-allocation step of Algorithm 1 (Eq. 13): given a pilot
/// variance estimate, each hypothesis is assigned the failure probability
/// it needs to reach ε′ at the projected sample size, so high-variance
/// hypotheses receive the larger shares of the δ budget.
double SolveDeltaForEpsilon(uint64_t n, double sample_variance,
                            double target_epsilon);

}  // namespace saphyra

#endif  // SAPHYRA_STATS_EMPIRICAL_BERNSTEIN_H_
