#include "stats/vc.h"

#include <cmath>

#include "util/logging.h"

namespace saphyra {

uint64_t VcSampleBound(double epsilon, double delta, double vc_dimension,
                       double c) {
  SAPHYRA_CHECK(epsilon > 0.0 && epsilon < 1.0);
  SAPHYRA_CHECK(delta > 0.0 && delta < 1.0);
  SAPHYRA_CHECK(vc_dimension >= 0.0);
  double n = c / (epsilon * epsilon) * (vc_dimension + std::log(1.0 / delta));
  return static_cast<uint64_t>(std::ceil(n));
}

double PiMaxVcBound(uint64_t pi_max) {
  if (pi_max <= 1) return 1.0;
  return std::floor(std::log2(static_cast<double>(pi_max))) + 1.0;
}

}  // namespace saphyra
