#ifndef SAPHYRA_BASELINES_KADABRA_H_
#define SAPHYRA_BASELINES_KADABRA_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "bc/path_sampler.h"
#include "core/saphyra.h"
#include "graph/graph.h"
#include "util/cancel.h"

namespace saphyra {

/// \brief Options for the KADABRA baseline (Borassi & Natale, ESA'16 [12]).
struct KadabraOptions {
  double epsilon = 0.05;
  double delta = 0.01;
  uint64_t seed = 1;
  double vc_constant = 0.5;
  /// KADABRA's signature balanced bidirectional BFS; unidirectional kept
  /// for ablations.
  SamplingStrategy strategy = SamplingStrategy::kBidirectional;
  /// BFS level-expansion policy (graph/frontier.h): kAuto/kHybrid use the
  /// direction-optimizing kernel, kTopDown the classic push. Results are
  /// bitwise identical either way.
  TraversalPolicy traversal = TraversalPolicy::kAuto;
  /// Worker threads for path sampling (execution only — results are
  /// bitwise identical for a fixed seed regardless of the thread count;
  /// see core/progressive_sampler.h).
  uint32_t num_threads = 1;
  /// 0 = guaranteed-ε mode; >0 = stop once the top-k node set is
  /// separated by the per-node confidence intervals. A top_k covering
  /// every node (≥ num_nodes) is a full ranking in disguise and falls
  /// back to ε mode.
  uint64_t top_k = 0;
  /// Samples per engine wave (0 = one wave per stopping check); batching
  /// granularity only, never affects results.
  uint64_t max_wave = 0;
  /// Optional cooperative cancellation/deadline (see util/cancel.h): on
  /// expiry the run returns completed-wave estimates tagged degraded.
  /// Borrowed; must outlive the run.
  const CancelToken* cancel = nullptr;
  /// Optional delegated wave execution (core/sample_engine.h): KADABRA
  /// runs a single progressive loop, so only ordinal 0 is requested.
  /// Empty = local drawing.
  std::function<WaveExecutor*(uint32_t ordinal)> wave_executor;
};

/// \brief Output of KADABRA.
struct KadabraResult {
  /// Estimates for all n nodes (like ABRA, KADABRA estimates the whole
  /// network even when only a subset is of interest).
  std::vector<double> bc;
  uint64_t samples_used = 0;
  uint32_t epochs = 0;
  double seconds = 0.0;
  bool stopped_early = false;
  /// Deadline/cancel truncation: estimates cover completed waves only and
  /// the (ε, δ) guarantee does NOT hold.
  bool degraded = false;
  StatusCode degrade_reason = StatusCode::kOk;
  /// Only when degraded: the per-node Bernstein bound (ε mode) or widest
  /// confidence half-width (top-k mode) actually achieved; infinity when
  /// truncation preceded any variance estimate.
  double epsilon_achieved = 0.0;
};

/// \brief KADABRA: adaptive uniform path sampling.
///
/// Each sample draws a uniform ordered node pair, samples *one* uniform
/// shortest path between them with a balanced bidirectional BFS, and
/// increments the counters of the path's inner nodes. Sampling runs on the
/// shared progressive scheduler (core/progressive_sampler.h) and stops
/// when per-node empirical-Bernstein deviations (failure budget split
/// uniformly across nodes, both tails, and doubling epochs) all reach ε,
/// or at the diameter-based VC cap of Riondato–Kornaropoulos — the
/// adaptive scheme of [12] with its union-bound bookkeeping simplified to
/// uniform weights. With `top_k` set the stop condition is instead
/// confidence-interval separation of the k most-central nodes.
KadabraResult RunKadabra(const Graph& g, const KadabraOptions& options);

/// \brief KADABRA's uniform-path sampling problem as a standalone object,
/// for shard workers that replay stripe draws bit-for-bit. Identical RNG
/// consumption per sample to the problem RunKadabra builds internally.
std::unique_ptr<HypothesisRankingProblem> MakeKadabraSamplingProblem(
    const Graph& g, SamplingStrategy strategy, TraversalPolicy traversal);

}  // namespace saphyra

#endif  // SAPHYRA_BASELINES_KADABRA_H_
