#ifndef SAPHYRA_BASELINES_KADABRA_H_
#define SAPHYRA_BASELINES_KADABRA_H_

#include <cstdint>
#include <vector>

#include "bc/path_sampler.h"
#include "graph/graph.h"

namespace saphyra {

/// \brief Options for the KADABRA baseline (Borassi & Natale, ESA'16 [12]).
struct KadabraOptions {
  double epsilon = 0.05;
  double delta = 0.01;
  uint64_t seed = 1;
  double vc_constant = 0.5;
  /// KADABRA's signature balanced bidirectional BFS; unidirectional kept
  /// for ablations.
  SamplingStrategy strategy = SamplingStrategy::kBidirectional;
};

/// \brief Output of KADABRA.
struct KadabraResult {
  /// Estimates for all n nodes (like ABRA, KADABRA estimates the whole
  /// network even when only a subset is of interest).
  std::vector<double> bc;
  uint64_t samples_used = 0;
  uint32_t epochs = 0;
  double seconds = 0.0;
  bool stopped_early = false;
};

/// \brief KADABRA: adaptive uniform path sampling.
///
/// Each sample draws a uniform ordered node pair, samples *one* uniform
/// shortest path between them with a balanced bidirectional BFS, and
/// increments the counters of the path's inner nodes. Sampling stops when
/// per-node empirical-Bernstein deviations (failure budget split uniformly
/// across nodes, both tails, and doubling epochs) all reach ε, or at the
/// diameter-based VC cap of Riondato–Kornaropoulos — the adaptive scheme of
/// [12] with its union-bound bookkeeping simplified to uniform weights.
KadabraResult RunKadabra(const Graph& g, const KadabraOptions& options);

}  // namespace saphyra

#endif  // SAPHYRA_BASELINES_KADABRA_H_
