#include "baselines/abra.h"

#include <algorithm>
#include <cmath>

#include "bc/vc_bc.h"
#include "graph/bfs.h"
#include "stats/vc.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace saphyra {

namespace {

/// Truncated BFS dependency accumulation for one sampled pair (u,v):
/// credits every inner node w of a shortest u-v path with σ_uv(w)/σ_uv.
/// Reusable scratch; O(edges within distance d(u,v)) per call.
class PairDependencyAccumulator {
 public:
  explicit PairDependencyAccumulator(const Graph& g)
      : g_(g),
        dist_(g.num_nodes(), 0),
        sigma_(g.num_nodes(), 0.0),
        mu_(g.num_nodes(), 0.0),
        epoch_of_(g.num_nodes(), 0),
        mu_epoch_(g.num_nodes(), 0) {}

  /// Returns false if v is unreachable from u. Otherwise calls
  /// credit(w, fraction) for every inner node w.
  template <typename CreditFn>
  bool Accumulate(NodeId u, NodeId v, const CreditFn& credit) {
    ++epoch_;
    order_.clear();
    Set(u, 0, 1.0);
    order_.push_back(u);
    uint32_t limit = kUnreachable;
    for (size_t head = 0; head < order_.size(); ++head) {
      NodeId x = order_[head];
      if (dist_[x] >= limit) break;  // v's level fully expanded
      for (NodeId y : g_.neighbors(x)) {
        if (epoch_of_[y] != epoch_) {
          Set(y, dist_[x] + 1, 0.0);
          order_.push_back(y);
          if (y == v) limit = dist_[y];
        }
        if (dist_[y] == dist_[x] + 1) sigma_[y] += sigma_[x];
      }
    }
    if (epoch_of_[v] != epoch_) return false;
    // Backward pass over the shortest-path DAG restricted to u-v paths:
    // μ(w) = #shortest w-v paths; processed in descending distance so every
    // successor is final before its predecessors accumulate.
    back_.clear();
    mu_epoch_[v] = epoch_;
    mu_[v] = 1.0;
    back_.push_back(v);
    for (size_t head = 0; head < back_.size(); ++head) {
      NodeId w = back_[head];
      for (NodeId x : g_.neighbors(w)) {
        if (epoch_of_[x] == epoch_ && dist_[x] + 1 == dist_[w] &&
            mu_epoch_[x] != epoch_) {
          mu_epoch_[x] = epoch_;
          mu_[x] = 0.0;
          back_.push_back(x);
        }
      }
    }
    std::sort(back_.begin(), back_.end(), [this](NodeId a, NodeId b) {
      return dist_[a] > dist_[b];
    });
    for (NodeId w : back_) {
      for (NodeId x : g_.neighbors(w)) {
        if (epoch_of_[x] == epoch_ && dist_[x] + 1 == dist_[w] &&
            mu_epoch_[x] == epoch_) {
          mu_[x] += mu_[w];
        }
      }
    }
    const double sigma_uv = sigma_[v];
    SAPHYRA_CHECK(sigma_uv > 0.0);
    for (NodeId w : back_) {
      if (w == u || w == v) continue;
      credit(w, sigma_[w] * mu_[w] / sigma_uv);
    }
    return true;
  }

 private:
  void Set(NodeId x, uint32_t d, double s) {
    epoch_of_[x] = epoch_;
    dist_[x] = d;
    sigma_[x] = s;
  }

  const Graph& g_;
  std::vector<uint32_t> dist_;
  std::vector<double> sigma_;
  std::vector<double> mu_;
  std::vector<uint64_t> epoch_of_;
  std::vector<uint64_t> mu_epoch_;
  std::vector<NodeId> order_;
  std::vector<NodeId> back_;
  uint64_t epoch_ = 0;
};

/// Exponential-moment bound on the empirical Rademacher average:
///   R̃ ≤ min_{s>0} (1/s)·ln( Σ_f exp(s²·||f||² / (2N²)) ),
/// evaluated stably and minimized by golden-section search on log s.
double RademacherBound(const std::vector<double>& sum_sq, uint64_t n_samples) {
  const double nn = static_cast<double>(n_samples);
  double max_v = 0.0;
  for (double v : sum_sq) max_v = std::max(max_v, v);
  auto phi = [&](double log_s) {
    double s = std::exp(log_s);
    double scale = s * s / (2.0 * nn * nn);
    double amax = scale * max_v;
    double acc = std::exp(-amax);  // the identically-zero function
    for (double v : sum_sq) acc += std::exp(scale * v - amax);
    return (amax + std::log(acc)) / s;
  };
  double lo = -10.0, hi = 12.0;
  for (int iter = 0; iter < 60; ++iter) {
    double m1 = lo + (hi - lo) / 3.0;
    double m2 = hi - (hi - lo) / 3.0;
    if (phi(m1) < phi(m2)) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  return phi(0.5 * (lo + hi));
}

}  // namespace

AbraResult RunAbra(const Graph& g, const AbraOptions& options) {
  SAPHYRA_CHECK(options.epsilon > 0.0 && options.epsilon < 1.0);
  Timer timer;
  const NodeId n = g.num_nodes();
  AbraResult result;
  result.bc.assign(n, 0.0);
  if (n < 2) return result;

  Rng rng(options.seed);
  PairDependencyAccumulator acc(g);
  std::vector<double> sum(n, 0.0);
  std::vector<double> sum_sq(n, 0.0);

  const double eps = options.epsilon;
  const double c = options.vc_constant;
  const uint64_t n0 = std::max<uint64_t>(
      32, static_cast<uint64_t>(
              std::ceil(c / (eps * eps) * std::log(2.0 / options.delta))));
  const uint64_t cap = std::max(
      n0, VcSampleBound(eps, options.delta, RiondatoVcBound(g), c));
  const uint32_t rounds = static_cast<uint32_t>(std::max<double>(
      1.0, std::ceil(std::log2(static_cast<double>(cap) /
                               static_cast<double>(n0)))));
  const double delta_epoch = options.delta / static_cast<double>(rounds + 1);

  uint64_t samples = 0;
  uint64_t target = n0;
  for (;;) {
    while (samples < target) {
      NodeId u = static_cast<NodeId>(rng.UniformInt(n));
      NodeId v;
      do {
        v = static_cast<NodeId>(rng.UniformInt(n));
      } while (v == u);
      acc.Accumulate(u, v, [&](NodeId w, double f) {
        sum[w] += f;
        sum_sq[w] += f * f;
      });
      ++samples;
    }
    ++result.epochs;
    const double r_bound = RademacherBound(sum_sq, samples);
    result.final_bound =
        2.0 * r_bound +
        3.0 * std::sqrt(std::log(2.0 / delta_epoch) /
                        (2.0 * static_cast<double>(samples)));
    if (result.final_bound <= eps || samples >= cap) break;
    target = std::min(samples * 2, cap);
  }

  for (NodeId w = 0; w < n; ++w) {
    result.bc[w] = sum[w] / static_cast<double>(samples);
  }
  result.samples_used = samples;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace saphyra
