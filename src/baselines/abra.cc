#include "baselines/abra.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "bc/vc_bc.h"
#include "core/progressive_sampler.h"
#include "graph/bfs.h"
#include "stats/vc.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace saphyra {

namespace {

/// Truncated BFS dependency accumulation for one sampled pair (u,v):
/// credits every inner node w of a shortest u-v path with σ_uv(w)/σ_uv.
/// Reusable scratch; O(edges within distance d(u,v)) per call.
class PairDependencyAccumulator {
 public:
  explicit PairDependencyAccumulator(const Graph& g)
      : g_(g),
        dist_(g.num_nodes(), 0),
        sigma_(g.num_nodes(), 0.0),
        mu_(g.num_nodes(), 0.0),
        epoch_of_(g.num_nodes(), 0),
        mu_epoch_(g.num_nodes(), 0) {}

  /// Returns false if v is unreachable from u. Otherwise calls
  /// credit(w, fraction) for every inner node w.
  template <typename CreditFn>
  bool Accumulate(NodeId u, NodeId v, const CreditFn& credit) {
    ++epoch_;
    order_.clear();
    Set(u, 0, 1.0);
    order_.push_back(u);
    uint32_t limit = kUnreachable;
    for (size_t head = 0; head < order_.size(); ++head) {
      NodeId x = order_[head];
      if (dist_[x] >= limit) break;  // v's level fully expanded
      for (NodeId y : g_.neighbors(x)) {
        if (epoch_of_[y] != epoch_) {
          Set(y, dist_[x] + 1, 0.0);
          order_.push_back(y);
          if (y == v) limit = dist_[y];
        }
        if (dist_[y] == dist_[x] + 1) sigma_[y] += sigma_[x];
      }
    }
    if (epoch_of_[v] != epoch_) return false;
    // Backward pass over the shortest-path DAG restricted to u-v paths:
    // μ(w) = #shortest w-v paths; processed in descending distance so every
    // successor is final before its predecessors accumulate.
    back_.clear();
    mu_epoch_[v] = epoch_;
    mu_[v] = 1.0;
    back_.push_back(v);
    for (size_t head = 0; head < back_.size(); ++head) {
      NodeId w = back_[head];
      for (NodeId x : g_.neighbors(w)) {
        if (epoch_of_[x] == epoch_ && dist_[x] + 1 == dist_[w] &&
            mu_epoch_[x] != epoch_) {
          mu_epoch_[x] = epoch_;
          mu_[x] = 0.0;
          back_.push_back(x);
        }
      }
    }
    std::sort(back_.begin(), back_.end(), [this](NodeId a, NodeId b) {
      return dist_[a] > dist_[b];
    });
    for (NodeId w : back_) {
      for (NodeId x : g_.neighbors(w)) {
        if (epoch_of_[x] == epoch_ && dist_[x] + 1 == dist_[w] &&
            mu_epoch_[x] == epoch_) {
          mu_[x] += mu_[w];
        }
      }
    }
    const double sigma_uv = sigma_[v];
    SAPHYRA_CHECK(sigma_uv > 0.0);
    for (NodeId w : back_) {
      if (w == u || w == v) continue;
      credit(w, sigma_[w] * mu_[w] / sigma_uv);
    }
    return true;
  }

 private:
  void Set(NodeId x, uint32_t d, double s) {
    epoch_of_[x] = epoch_;
    dist_[x] = d;
    sigma_[x] = s;
  }

  const Graph& g_;
  std::vector<uint32_t> dist_;
  std::vector<double> sigma_;
  std::vector<double> mu_;
  std::vector<uint64_t> epoch_of_;
  std::vector<uint64_t> mu_epoch_;
  std::vector<NodeId> order_;
  std::vector<NodeId> back_;
  uint64_t epoch_ = 0;
};

/// Exponential-moment bound on the empirical Rademacher average:
///   R̃ ≤ min_{s>0} (1/s)·ln( Σ_f exp(s²·||f||² / (2N²)) ),
/// evaluated stably and minimized by golden-section search on log s.
double RademacherBound(const std::vector<double>& sum_sq, uint64_t n_samples) {
  const double nn = static_cast<double>(n_samples);
  double max_v = 0.0;
  for (double v : sum_sq) max_v = std::max(max_v, v);
  auto phi = [&](double log_s) {
    double s = std::exp(log_s);
    double scale = s * s / (2.0 * nn * nn);
    double amax = scale * max_v;
    double acc = std::exp(-amax);  // the identically-zero function
    for (double v : sum_sq) acc += std::exp(scale * v - amax);
    return (amax + std::log(acc)) / s;
  };
  double lo = -10.0, hi = 12.0;
  for (int iter = 0; iter < 60; ++iter) {
    double m1 = lo + (hi - lo) / 3.0;
    double m2 = hi - (hi - lo) / 3.0;
    if (phi(m1) < phi(m2)) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  return phi(0.5 * (lo + hi));
}

/// ABRA's sample generator as a weighted-loss ranking problem: a sample is
/// a uniform ordered pair (u,v) and hypothesis w's loss is the dependency
/// fraction σ_uv(w)/σ_uv ∈ [0, 1] (0 for unreachable pairs). Clones share
/// the graph and own their BFS scratch.
class AbraProblem : public HypothesisRankingProblem {
 public:
  AbraProblem(const Graph& g, double vc_bound)
      : g_(g), vc_bound_(vc_bound), acc_(g) {}

  size_t num_hypotheses() const override { return g_.num_nodes(); }

  double ComputeExactRisks(std::vector<double>* exact_risks) override {
    exact_risks->assign(num_hypotheses(), 0.0);
    return 0.0;
  }

  bool has_weighted_losses() const override { return true; }

  void SampleApproxLosses(Rng* rng, std::vector<uint32_t>* hits) override {
    SAPHYRA_CHECK_MSG(false, "ABRA losses are fractional");
  }

  void SampleWeightedLosses(Rng* rng,
                            std::vector<WeightedHit>* hits) override {
    const NodeId n = g_.num_nodes();
    NodeId u = static_cast<NodeId>(rng->UniformInt(n));
    NodeId v;
    do {
      v = static_cast<NodeId>(rng->UniformInt(n));
    } while (v == u);
    acc_.Accumulate(u, v, [&](NodeId w, double f) {
      hits->push_back({w, f});
    });
  }

  double VcDimension() const override { return vc_bound_; }

  std::unique_ptr<HypothesisRankingProblem> CloneForSampling() override {
    return std::make_unique<AbraProblem>(g_, vc_bound_);
  }

 private:
  const Graph& g_;
  double vc_bound_;
  PairDependencyAccumulator acc_;
};

/// ABRA's stopping criterion on the shared progressive scheduler: bound
/// the supremum deviation by 2·R̃ + 3·sqrt(ln(2/δ_e)/2N), with R̃ the
/// self-bounding Rademacher estimate over the per-node sums of squares.
/// Not a per-hypothesis deviation rule — the reason StoppingRule exposes
/// whole-vector moment statistics instead of a per-hypothesis callback.
class RademacherRule : public StoppingRule {
 public:
  RademacherRule(double epsilon, double delta)
      : epsilon_(epsilon), delta_(delta) {}

  void Begin(uint64_t initial_samples, uint64_t max_samples,
             uint32_t planned_checks) override {
    delta_check_ = delta_ / static_cast<double>(planned_checks);
  }

  bool ShouldStop(const SampleStats& stats) override {
    const double r_bound = RademacherBound(stats.sum_squares, stats.n);
    last_bound_ = 2.0 * r_bound +
                  3.0 * std::sqrt(std::log(2.0 / delta_check_) /
                                  (2.0 * static_cast<double>(stats.n)));
    return last_bound_ <= epsilon_;
  }

  double last_bound() const { return last_bound_; }

 private:
  double epsilon_;
  double delta_;
  double delta_check_ = 0.0;
  double last_bound_ = 0.0;
};

}  // namespace

AbraResult RunAbra(const Graph& g, const AbraOptions& options) {
  SAPHYRA_CHECK(options.epsilon > 0.0 && options.epsilon < 1.0);
  Timer timer;
  const NodeId n = g.num_nodes();
  AbraResult result;
  result.bc.assign(n, 0.0);
  if (n < 2) return result;

  Rng rng(options.seed);
  const double eps = options.epsilon;
  const double vc = RiondatoVcBound(g);  // two BFS sweeps — compute once
  AbraProblem problem(g, vc);
  ProgressiveOptions schedule =
      MakeVcCappedSchedule(eps, options.delta, vc, options.vc_constant,
                           options.max_wave, options.num_threads);
  schedule.cancel = options.cancel;
  if (options.wave_executor) schedule.executor = options.wave_executor(0);
  if (options.cancel != nullptr && options.cancel->CanExpire() &&
      schedule.max_wave == 0) {
    schedule.max_wave = 1024;  // poll often enough for the deadline to bite
  }

  ProgressiveSampler sampler(&problem, schedule, &rng);
  ProgressiveResult run;
  if (options.top_k > 0 && options.top_k < n) {
    // Top-k mode: empirical-Bernstein separation on the fractional
    // losses (valid for any [0,1]-valued samples, not just 0/1).
    TopKSeparationRule rule(options.top_k, options.delta, /*deltas=*/{},
                            /*offsets=*/{}, /*scale=*/1.0);
    run = sampler.Run(&rule);
    result.final_bound = rule.last_gap();
    if (run.degraded) {
      result.epsilon_achieved = rule.EvaluateWorstHalfwidth(run.stats);
    }
  } else {
    RademacherRule rule(eps, options.delta);
    run = sampler.Run(&rule);
    result.final_bound = rule.last_bound();
    if (run.degraded) {
      // The truncation-point diagnostic evaluation in the run loop left
      // last_bound() at the achieved Rademacher bound — valid only once a
      // second sample exists (the bound divides by N).
      result.epsilon_achieved =
          run.stats.n >= 2 ? rule.last_bound()
                           : std::numeric_limits<double>::infinity();
    }
  }

  for (NodeId w = 0; w < n; ++w) {
    result.bc[w] = run.stats.mean(w);
  }
  result.samples_used = run.samples_used;
  result.epochs = run.checks_used;
  result.degraded = run.degraded;
  result.degrade_reason = run.degrade_reason;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

std::unique_ptr<HypothesisRankingProblem> MakeAbraSamplingProblem(
    const Graph& g) {
  // Shard workers never read VcDimension (the coordinator owns the sample
  // schedule), so the two-BFS Riondato bound is skipped deliberately —
  // sampling behavior is independent of it.
  return std::make_unique<AbraProblem>(g, /*vc_bound=*/0.0);
}

}  // namespace saphyra
