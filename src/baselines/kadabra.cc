#include "baselines/kadabra.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "bc/vc_bc.h"
#include "core/progressive_sampler.h"
#include "stats/vc.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace saphyra {

namespace {

/// KADABRA's sample generator as a hypothesis-ranking problem: one sample
/// draws a uniform ordered node pair, samples *one* uniform shortest path
/// between them with the configured strategy, and reports the path's inner
/// nodes (0/1 losses over all n node-hypotheses). Clones share the graph
/// and own their BFS scratch, so the progressive scheduler can stripe the
/// draw over its logical workers.
class KadabraProblem : public HypothesisRankingProblem {
 public:
  KadabraProblem(const Graph& g, SamplingStrategy strategy,
                 TraversalPolicy traversal, double vc_bound)
      : g_(g),
        strategy_(strategy),
        vc_bound_(vc_bound),
        sampler_(g, /*arc_component=*/nullptr) {
    sampler_.set_traversal(traversal);
  }

  size_t num_hypotheses() const override { return g_.num_nodes(); }

  double ComputeExactRisks(std::vector<double>* exact_risks) override {
    // KADABRA has no exact subspace; everything is sampled.
    exact_risks->assign(num_hypotheses(), 0.0);
    return 0.0;
  }

  void SampleApproxLosses(Rng* rng, std::vector<uint32_t>* hits) override {
    const NodeId n = g_.num_nodes();
    NodeId u = static_cast<NodeId>(rng->UniformInt(n));
    NodeId v;
    do {
      v = static_cast<NodeId>(rng->UniformInt(n));
    } while (v == u);
    // Unreachable pairs are zero-valued samples.
    if (sampler_.SampleUniformPath(u, v, kInvalidComp, strategy_, rng,
                                   &path_)) {
      for (size_t i = 1; i + 1 < path_.nodes.size(); ++i) {
        hits->push_back(path_.nodes[i]);
      }
    }
  }

  double VcDimension() const override { return vc_bound_; }

  std::unique_ptr<HypothesisRankingProblem> CloneForSampling() override {
    return std::make_unique<KadabraProblem>(g_, strategy_,
                                            sampler_.traversal(), vc_bound_);
  }

 private:
  const Graph& g_;
  SamplingStrategy strategy_;
  double vc_bound_;
  PathSampler sampler_;
  PathSample path_;
};

}  // namespace

KadabraResult RunKadabra(const Graph& g, const KadabraOptions& options) {
  SAPHYRA_CHECK(options.epsilon > 0.0 && options.epsilon < 1.0);
  Timer timer;
  const NodeId n = g.num_nodes();
  KadabraResult result;
  result.bc.assign(n, 0.0);
  if (n < 2) return result;

  Rng rng(options.seed);
  const double eps = options.epsilon;
  const double vc = RiondatoVcBound(g);  // two BFS sweeps — compute once
  KadabraProblem problem(g, options.strategy, options.traversal, vc);
  ProgressiveOptions schedule =
      MakeVcCappedSchedule(eps, options.delta, vc, options.vc_constant,
                           options.max_wave, options.num_threads);
  schedule.cancel = options.cancel;
  if (options.wave_executor) schedule.executor = options.wave_executor(0);
  if (options.cancel != nullptr && options.cancel->CanExpire() &&
      schedule.max_wave == 0) {
    schedule.max_wave = 1024;  // poll often enough for the deadline to bite
  }

  // The adaptive scheme of [12] with its union-bound bookkeeping
  // simplified to uniform weights: δ split over n nodes, two tails, and
  // the planned doubling checks (the rules own that split).
  ProgressiveSampler sampler(&problem, schedule, &rng);
  ProgressiveResult run;
  if (options.top_k > 0 && options.top_k < n) {
    TopKSeparationRule rule(options.top_k, options.delta, /*deltas=*/{},
                            /*offsets=*/{}, /*scale=*/1.0);
    run = sampler.Run(&rule);
    if (run.degraded) {
      result.epsilon_achieved = rule.EvaluateWorstHalfwidth(run.stats);
    }
  } else {
    EpsilonGuaranteeRule rule(eps, options.delta, n);
    run = sampler.Run(&rule);
    if (run.degraded) {
      result.epsilon_achieved = rule.EvaluateWorstEpsilon(run.stats);
    }
  }

  const uint64_t samples = run.samples_used;
  for (NodeId v = 0; v < n; ++v) {
    result.bc[v] = run.stats.mean(v);
  }
  result.samples_used = samples;
  result.epochs = run.checks_used;
  result.stopped_early = run.stopped_early;
  result.degraded = run.degraded;
  result.degrade_reason = run.degrade_reason;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

std::unique_ptr<HypothesisRankingProblem> MakeKadabraSamplingProblem(
    const Graph& g, SamplingStrategy strategy, TraversalPolicy traversal) {
  // Shard workers never read VcDimension (the coordinator owns the sample
  // schedule), so the two-BFS Riondato bound is skipped deliberately —
  // sampling behavior is independent of it.
  return std::make_unique<KadabraProblem>(g, strategy, traversal,
                                          /*vc_bound=*/0.0);
}

}  // namespace saphyra
