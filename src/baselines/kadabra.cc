#include "baselines/kadabra.h"

#include <algorithm>
#include <cmath>

#include "bc/vc_bc.h"
#include "stats/empirical_bernstein.h"
#include "stats/vc.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace saphyra {

KadabraResult RunKadabra(const Graph& g, const KadabraOptions& options) {
  SAPHYRA_CHECK(options.epsilon > 0.0 && options.epsilon < 1.0);
  Timer timer;
  const NodeId n = g.num_nodes();
  KadabraResult result;
  result.bc.assign(n, 0.0);
  if (n < 2) return result;

  Rng rng(options.seed);
  PathSampler sampler(g, /*arc_component=*/nullptr);
  PathSample path;
  std::vector<uint64_t> counts(n, 0);

  const double eps = options.epsilon;
  const double c = options.vc_constant;
  const uint64_t n0 = std::max<uint64_t>(
      32, static_cast<uint64_t>(
              std::ceil(c / (eps * eps) * std::log(2.0 / options.delta))));
  const uint64_t omega = std::max(
      n0, VcSampleBound(eps, options.delta, RiondatoVcBound(g), c));
  const uint32_t rounds = static_cast<uint32_t>(std::max<double>(
      1.0, std::ceil(std::log2(static_cast<double>(omega) /
                               static_cast<double>(n0)))));
  // Uniform failure-budget split: n nodes, two tails, `rounds` checks.
  const double delta_v =
      options.delta /
      (2.0 * static_cast<double>(n) * static_cast<double>(rounds + 1));

  uint64_t samples = 0;
  uint64_t target = n0;
  for (;;) {
    while (samples < target) {
      NodeId u = static_cast<NodeId>(rng.UniformInt(n));
      NodeId v;
      do {
        v = static_cast<NodeId>(rng.UniformInt(n));
      } while (v == u);
      if (sampler.SampleUniformPath(u, v, kInvalidComp, options.strategy,
                                    &rng, &path)) {
        for (size_t i = 1; i + 1 < path.nodes.size(); ++i) {
          ++counts[path.nodes[i]];
        }
      }
      ++samples;  // unreachable pairs are zero-valued samples
    }
    ++result.epochs;
    double worst = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      double var = BernoulliSampleVariance(counts[v], samples);
      worst = std::max(worst,
                       EmpiricalBernsteinEpsilon(samples, delta_v, var));
      if (worst > eps) break;
    }
    if (worst <= eps) {
      result.stopped_early = samples < omega;
      break;
    }
    if (samples >= omega) break;
    target = std::min(samples * 2, omega);
  }

  for (NodeId v = 0; v < n; ++v) {
    result.bc[v] =
        static_cast<double>(counts[v]) / static_cast<double>(samples);
  }
  result.samples_used = samples;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace saphyra
