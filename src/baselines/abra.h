#ifndef SAPHYRA_BASELINES_ABRA_H_
#define SAPHYRA_BASELINES_ABRA_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/saphyra.h"
#include "graph/graph.h"
#include "util/cancel.h"

namespace saphyra {

/// \brief Options for the ABRA baseline (Riondato & Upfal, KDD'16 [47]).
struct AbraOptions {
  double epsilon = 0.05;
  double delta = 0.01;
  uint64_t seed = 1;
  /// Constant of the fallback sample-size cap.
  double vc_constant = 0.5;
  /// Worker threads for pair sampling (execution only — results are
  /// bitwise identical for a fixed seed regardless of the thread count;
  /// see core/progressive_sampler.h).
  uint32_t num_threads = 1;
  /// 0 = Rademacher sup-norm ε mode; >0 = stop once the top-k node set is
  /// separated by per-node empirical-Bernstein intervals. A top_k covering
  /// every node (≥ num_nodes) is a full ranking in disguise and falls
  /// back to ε mode.
  uint64_t top_k = 0;
  /// Samples per engine wave (0 = one wave per stopping check); batching
  /// granularity only, never affects results.
  uint64_t max_wave = 0;
  /// Optional cooperative cancellation/deadline (see util/cancel.h): on
  /// expiry the run returns completed-wave estimates tagged degraded.
  /// Borrowed; must outlive the run.
  const CancelToken* cancel = nullptr;
  /// Optional delegated wave execution (core/sample_engine.h): ABRA runs a
  /// single progressive loop, so only ordinal 0 is requested. Empty =
  /// local drawing.
  std::function<WaveExecutor*(uint32_t ordinal)> wave_executor;
};

/// \brief Output of ABRA.
struct AbraResult {
  /// Estimated betweenness for all n nodes (ABRA cannot restrict itself to
  /// a subset — one of the paper's motivating observations).
  std::vector<double> bc;
  uint64_t samples_used = 0;
  uint32_t epochs = 0;
  /// Last Rademacher deviation bound (ε mode), or the final top-k
  /// separation gap (top-k mode; ≥ 0 iff separation was reached).
  double final_bound = 0.0;
  double seconds = 0.0;
  /// Deadline/cancel truncation: estimates cover completed waves only and
  /// the (ε, δ) guarantee does NOT hold.
  bool degraded = false;
  StatusCode degrade_reason = StatusCode::kOk;
  /// Only when degraded: the Rademacher bound (ε mode) or widest
  /// confidence half-width (top-k mode) actually achieved; infinity when
  /// truncation preceded any variance estimate.
  double epsilon_achieved = 0.0;
};

/// \brief ABRA: progressive node-pair sampling with a Rademacher-average
/// stopping rule.
///
/// Each sample is a uniform ordered pair (u,v); the BFS dependency
/// accumulation credits every node w on a shortest u-v path with
/// σ_uv(w)/σ_uv. The stopping rule bounds the supremum deviation by
/// 2·R̃ + 3·sqrt(ln(2/δ_e)/2N), where the empirical Rademacher average R̃
/// is bounded through the exponential-moment ("Massart-style") function of
/// the per-node sums of squares minimized over its scale parameter — the
/// self-bounding computation ABRA performs at the end of each sample
/// schedule epoch. The run executes on the shared progressive scheduler
/// (core/progressive_sampler.h): epochs double the sample size, δ is
/// split evenly across the planned checks, and a Riondato–Kornaropoulos
/// VC cap bounds the schedule.
AbraResult RunAbra(const Graph& g, const AbraOptions& options);

/// \brief ABRA's pair-dependency sampling problem as a standalone object,
/// for shard workers that replay stripe draws bit-for-bit. Identical RNG
/// consumption per sample to the problem RunAbra builds internally.
std::unique_ptr<HypothesisRankingProblem> MakeAbraSamplingProblem(
    const Graph& g);

}  // namespace saphyra

#endif  // SAPHYRA_BASELINES_ABRA_H_
